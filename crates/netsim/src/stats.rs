//! Measurement and logging.
//!
//! The simulator records enough per-packet and per-flow information to
//! rebuild every curve plotted in the paper: ingress/egress rates at the
//! bottleneck (Figures 4a/4b), per-packet queuing delay (Figure 4e), packets
//! delivered over time (the fitness signal for the genetic algorithm), and a
//! transport event log detailed enough to print the Figure 4c timeline.

use crate::packet::FlowId;
use crate::queue::QueueCounters;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One bottleneck-crossing record: a packet either entered the queue,
/// left the queue onto the link, or was dropped at the tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BottleneckEvent {
    /// The packet arrived at the gateway and was accepted into the queue.
    Enqueued,
    /// The packet arrived at the gateway and was dropped (queue full).
    Dropped,
    /// The packet was transmitted over the bottleneck link.
    Dequeued {
        /// Time the packet spent in the queue.
        queuing_delay: SimDuration,
    },
    /// The packet was CE-marked by the queue discipline (RED marks at
    /// enqueue, CoDel at dequeue); an `Enqueued`/`Dequeued` record for the
    /// same packet accompanies this one.
    Marked,
}

/// A timestamped bottleneck record for one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BottleneckRecord {
    /// When the event happened.
    pub at: SimTime,
    /// Which flow the packet belongs to.
    pub flow: FlowId,
    /// Index of the hop whose queue/link produced the record (always 0 in
    /// the paper's single-bottleneck dumbbell).
    pub hop: u32,
    /// Packet size in bytes.
    pub size: u32,
    /// What happened.
    pub event: BottleneckEvent,
}

/// Transport-level events for the CCA flow, used for root-cause timelines
/// (Figure 4c) and for assertions in tests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TransportEvent {
    /// A data packet was (re)transmitted.
    Sent {
        /// Transport sequence number.
        seq: u64,
        /// `true` for retransmissions.
        retransmission: bool,
        /// `tp->delivered` stamped into the packet at this transmission.
        delivered_stamp: u64,
    },
    /// The cumulative ACK advanced.
    CumAckAdvanced {
        /// New cumulative ACK (first unacked sequence).
        cum_ack: u64,
    },
    /// A packet was newly SACKed.
    Sacked {
        /// Sequence of the SACKed packet.
        seq: u64,
    },
    /// A packet was marked lost by fast-retransmit / SACK-based detection.
    MarkedLost {
        /// Sequence of the lost packet.
        seq: u64,
    },
    /// The retransmission timer expired.
    RtoFired {
        /// Current RTO backoff exponent (0 = first expiry).
        backoff: u32,
    },
    /// The sender entered fast recovery.
    EnterRecovery,
    /// The sender exited recovery.
    ExitRecovery,
    /// An algorithm-internal event (string produced by the CCA, e.g. BBR
    /// probe-round transitions).
    Cc {
        /// Free-form description.
        detail: String,
    },
}

/// A timestamped transport event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransportRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TransportEvent,
}

/// Summary statistics for the CCA flow.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Unique data packets delivered to the receiver (in order, counting each
    /// sequence once).
    pub delivered_packets: u64,
    /// Bytes corresponding to `delivered_packets`.
    pub delivered_bytes: u64,
    /// Total transmissions (including retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Packets the sender marked lost.
    pub marked_lost: u64,
    /// Packets of the CCA flow dropped at the bottleneck queue.
    pub queue_drops: u64,
    /// Number of RTO expirations.
    pub rto_count: u64,
    /// Number of fast-recovery episodes.
    pub recovery_episodes: u64,
    /// Smoothed RTT at the end of the run, microseconds (0 if never sampled).
    pub final_srtt_us: u64,
    /// Minimum RTT observed, microseconds (0 if never sampled).
    pub min_rtt_us: u64,
    /// Highest sequence number sent (exclusive).
    pub highest_sent: u64,
    /// Final cumulative ACK (first unacked sequence).
    pub final_cum_ack: u64,
    /// Packets of this flow CE-marked at the bottleneck queue (AQM + ECN).
    pub ce_marked: u64,
    /// CE-marked packets of this flow that reached the receiver.
    pub ce_received: u64,
    /// CE marks the receiver echoed into ACKs.
    pub ece_echoed: u64,
    /// CE echoes the sender processed from arriving ACKs.
    pub ece_acked: u64,
}

/// Per-flow measurements for one congestion-controlled flow.
///
/// `flows[0]` is the primary flow; the legacy [`RunStats::flow`] and
/// [`RunStats::delivery_times`] accessors (which scoring and analysis code
/// keeps using) borrow from it. Flows 1.. only exist in multi-flow
/// scenarios.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Sender-side summary counters.
    pub summary: FlowSummary,
    /// Times at which each *new* (not previously delivered) packet of this
    /// flow reached the sink.
    pub delivery_times: Vec<SimTime>,
    /// When the flow started sending.
    pub start: SimTime,
    /// When the flow stopped sending (`None` = ran to the end of the
    /// scenario).
    pub stop: Option<SimTime>,
    /// Data packets of this flow received at the sink, including duplicates.
    pub sink_received: u64,
}

impl FlowStats {
    /// The interval during which the flow was allowed to send, clamped to
    /// the scenario duration.
    pub fn active_secs(&self, duration: SimDuration) -> f64 {
        let end = self
            .stop
            .unwrap_or(SimTime::ZERO + duration)
            .min(SimTime::ZERO + duration);
        end.saturating_since(self.start).as_secs_f64()
    }

    /// Average goodput over the flow's active interval, in bits per second
    /// (sink-side: counts distinct packets that reached the receiver).
    pub fn goodput_bps(&self, mss: u32, duration: SimDuration) -> f64 {
        let secs = self.active_secs(duration);
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivery_times.len() as f64 * mss as f64 * 8.0 / secs
    }
}

/// Inline-array per-flow rate vector.
///
/// [`SimResult::per_flow_goodput_bps`](crate::sim::SimResult::per_flow_goodput_bps)
/// used to allocate a `Vec<f64>` per call even for the dominant single-flow
/// case; `FlowRates` stores up to four rates inline and only spills to the
/// heap for larger fairness scenarios. It dereferences to `&[f64]`, so call
/// sites treat it exactly like a slice.
#[derive(Clone, Debug, Default)]
pub struct FlowRates {
    inline: [f64; 4],
    len: u32,
    spill: Vec<f64>,
}

impl FlowRates {
    /// An empty rate vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rate.
    pub fn push(&mut self, rate: f64) {
        if self.spill.is_empty() && (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = rate;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill
                    .extend_from_slice(&self.inline[..self.len as usize]);
            }
            self.spill.push(rate);
        }
    }

    /// The rates as a slice.
    pub fn as_slice(&self) -> &[f64] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for FlowRates {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a FlowRates {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A log-bucketed flow-completion-time histogram, reusing the obs crate's
/// bucketing scheme ([`ccfuzz_obs::metrics::bucket_index`]: exact below 16,
/// four sub-buckets per power of two above, < 25 % relative error). Values
/// are FCTs in nanoseconds. Bounded memory regardless of how many flows a
/// workload run spawns — this is what replaces unbounded per-flow
/// `delivery_times` retention for dynamic flows.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FctHistogram {
    /// Per-bucket counts (256 buckets; allocated on first record).
    buckets: Vec<u64>,
    /// Total recorded values.
    count: u64,
    /// Sum of recorded values (nanoseconds).
    sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded value (0 when empty).
    max: u64,
}

/// Number of buckets in [`FctHistogram`] (mirrors the obs histogram).
const FCT_BUCKETS: usize = 256;

impl FctHistogram {
    /// Records one FCT sample in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        if self.buckets.is_empty() {
            self.buckets.resize(FCT_BUCKETS, 0);
            self.min = u64::MAX;
        }
        self.buckets[ccfuzz_obs::metrics::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum += nanos;
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean FCT in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in `[0, 100]`) in nanoseconds, linearly
    /// interpolated within the bucket holding the target rank and clamped
    /// to the observed min/max (the obs snapshot convention, so p95 < p99
    /// stays ordered even inside one log bucket). Returns 0 when empty.
    pub fn percentile_nanos(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen += n;
            if seen >= target {
                let lo = ccfuzz_obs::metrics::bucket_floor(i);
                let hi = if i + 1 < FCT_BUCKETS {
                    ccfuzz_obs::metrics::bucket_floor(i + 1)
                } else {
                    u64::MAX
                };
                let frac = (target - before) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return (est as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Clears all samples, keeping the bucket allocation.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = if self.buckets.is_empty() { 0 } else { u64::MAX };
        self.max = 0;
    }

    /// Mixes the histogram's contents into a digest via `mix`.
    fn digest_into(&self, mix: &mut impl FnMut(u64)) {
        mix(self.count);
        mix(self.sum);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                mix(i as u64);
                mix(n);
            }
        }
    }
}

/// One retained flow-completion sample (see [`WorkloadStats::samples`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FctSample {
    /// The flow's byte budget in packets.
    pub size_packets: u64,
    /// Completion time: spawn to final delivery ACKed.
    pub fct: SimDuration,
}

/// Statistics of a dynamic-flow workload run. Present in [`RunStats`] only
/// when `SimConfig::arrivals` is configured; every pre-existing mode leaves
/// it `None` and digests exactly as before.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Dynamic flows spawned by the arrival process.
    pub spawned: u64,
    /// Dynamic flows whose whole byte budget was delivered (each recorded
    /// exactly one FCT sample).
    pub completed: u64,
    /// Arrivals skipped because the concurrent-flow cap was reached.
    pub capped: u64,
    /// Flows still live (spawned, not completed) when the run ended.
    pub active_at_end: u64,
    /// Data packets transmitted by flows that completed and recycled.
    pub completed_tx: u64,
    /// Data packets of completed flows that reached the sink.
    pub completed_delivered: u64,
    /// Data packets of completed flows dropped at a gateway queue.
    pub completed_dropped: u64,
    /// FCT histogram of mice (size ≤ the configured threshold).
    pub fct_mice: FctHistogram,
    /// FCT histogram of elephants (size > the configured threshold).
    pub fct_elephants: FctHistogram,
    /// Bounded reservoir of individual `(size, FCT)` samples — a uniform
    /// random subset of all completions, capped at
    /// [`WorkloadStats::MAX_SAMPLES`].
    pub samples: Vec<FctSample>,
}

impl WorkloadStats {
    /// Upper bound on retained individual FCT samples.
    pub const MAX_SAMPLES: usize = 256;

    /// Total FCT samples recorded across both size classes.
    pub fn fct_count(&self) -> u64 {
        self.fct_mice.count() + self.fct_elephants.count()
    }

    /// Clears all counters and histograms, keeping allocations.
    pub fn clear(&mut self) {
        self.spawned = 0;
        self.completed = 0;
        self.capped = 0;
        self.active_at_end = 0;
        self.completed_tx = 0;
        self.completed_delivered = 0;
        self.completed_dropped = 0;
        self.fct_mice.clear();
        self.fct_elephants.clear();
        self.samples.clear();
    }
}

/// Everything measured during one simulation run.
///
/// The primary flow's summary and delivery times live in `flows[0]`; the
/// legacy [`RunStats::flow`] and [`RunStats::delivery_times`] accessors
/// borrow from it (they were mirror *fields* before, cloned at the end of
/// every run — a pure waste on the fuzzer's hot path).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-packet bottleneck records (enqueue/dequeue/drop), time ordered.
    pub bottleneck: Vec<BottleneckRecord>,
    /// Transport event log for the primary CCA flow, time ordered.
    pub transport: Vec<TransportRecord>,
    /// Queue occupancy samples `(time, packets, bytes)` taken every
    /// `stats_interval`, summed across every hop of the path (identical to
    /// the single queue's occupancy in the one-hop dumbbell).
    pub queue_samples: Vec<(SimTime, usize, u64)>,
    /// Final queue counters of the *first* hop — exactly the legacy single
    /// gateway's counters in the one-hop dumbbell. Multi-hop runs report
    /// every hop in [`RunStats::hop_counters`].
    pub queue_counters: QueueCounters,
    /// Per-hop lifetime queue counters, indexed by hop (length 1 without a
    /// topology; `hop_counters[0] == queue_counters` always).
    pub hop_counters: Vec<QueueCounters>,
    /// Per-hop queue occupancy samples, populated only for multi-hop runs
    /// (single-hop runs carry everything in `queue_samples` as before).
    pub hop_samples: Vec<Vec<(SimTime, usize, u64)>>,
    /// Per-flow statistics for every congestion-controlled flow, indexed by
    /// [`crate::packet::FlowId::Cca`] index.
    pub flows: Vec<FlowStats>,
    /// Cross-traffic packets that reached the sink.
    pub cross_delivered: u64,
    /// Cross-traffic packets dropped at the queue.
    pub cross_dropped: u64,
    /// `true` if the run hit the event-budget safety valve before reaching
    /// the configured duration.
    pub truncated: bool,
    /// Total events processed.
    pub events_processed: u64,
    /// Delivery timestamps not retained because a flow hit the per-flow
    /// retention cap (bounded-memory backstop; zero in every classic mode).
    pub delivery_samples_dropped: u64,
    /// Dynamic-flow workload statistics; `Some` exactly when
    /// `SimConfig::arrivals` was configured.
    pub workload: Option<Box<WorkloadStats>>,
}

/// Zero summary returned by [`RunStats::flow`] when no flow was simulated
/// (e.g. on a default-constructed `RunStats`).
const EMPTY_FLOW_SUMMARY: FlowSummary = FlowSummary {
    delivered_packets: 0,
    delivered_bytes: 0,
    transmissions: 0,
    retransmissions: 0,
    marked_lost: 0,
    queue_drops: 0,
    rto_count: 0,
    recovery_episodes: 0,
    final_srtt_us: 0,
    min_rtt_us: 0,
    highest_sent: 0,
    final_cum_ack: 0,
    ce_marked: 0,
    ce_received: 0,
    ece_echoed: 0,
    ece_acked: 0,
};

impl RunStats {
    /// Summary counters of the primary CCA flow (borrows `flows[0]`).
    pub fn flow(&self) -> &FlowSummary {
        self.flows
            .first()
            .map(|f| &f.summary)
            .unwrap_or(&EMPTY_FLOW_SUMMARY)
    }

    /// Times at which each *new* (not previously delivered) packet of the
    /// primary CCA flow reached the sink, used for windowed-throughput
    /// scoring (borrows `flows[0]`).
    pub fn delivery_times(&self) -> &[SimTime] {
        self.flows
            .first()
            .map(|f| f.delivery_times.as_slice())
            .unwrap_or(&[])
    }
    /// Queuing-delay samples for a flow: `(dequeue time, delay)`. Multi-hop
    /// runs contribute one sample per hop crossed; see
    /// [`RunStats::queuing_delays_at_hop`] for a single hop's view.
    pub fn queuing_delays(&self, flow: FlowId) -> Vec<(SimTime, SimDuration)> {
        self.bottleneck
            .iter()
            .filter(|r| r.flow == flow)
            .filter_map(|r| match r.event {
                BottleneckEvent::Dequeued { queuing_delay } => Some((r.at, queuing_delay)),
                _ => None,
            })
            .collect()
    }

    /// Queuing-delay samples for a flow at one specific hop.
    pub fn queuing_delays_at_hop(&self, hop: u32, flow: FlowId) -> Vec<(SimTime, SimDuration)> {
        self.bottleneck
            .iter()
            .filter(|r| r.flow == flow && r.hop == hop)
            .filter_map(|r| match r.event {
                BottleneckEvent::Dequeued { queuing_delay } => Some((r.at, queuing_delay)),
                _ => None,
            })
            .collect()
    }

    /// Cumulative bytes that entered the queue for `flow`, as `(time, bytes)`
    /// step points (the "ingress" curves of Figures 4a/4b).
    pub fn ingress_bytes(&self, flow: FlowId) -> Vec<(SimTime, u64)> {
        let mut total = 0u64;
        self.bottleneck
            .iter()
            .filter(|r| r.flow == flow)
            .filter_map(|r| match r.event {
                BottleneckEvent::Enqueued | BottleneckEvent::Dropped => {
                    total += r.size as u64;
                    Some((r.at, total))
                }
                _ => None,
            })
            .collect()
    }

    /// Cumulative bytes that left the queue (crossed the bottleneck) for
    /// `flow`, as `(time, bytes)` step points (the "egress" curves).
    pub fn egress_bytes(&self, flow: FlowId) -> Vec<(SimTime, u64)> {
        let mut total = 0u64;
        self.bottleneck
            .iter()
            .filter(|r| r.flow == flow)
            .filter_map(|r| match r.event {
                BottleneckEvent::Dequeued { .. } => {
                    total += r.size as u64;
                    Some((r.at, total))
                }
                _ => None,
            })
            .collect()
    }

    /// Count of transport events matching a predicate.
    pub fn count_transport<F: Fn(&TransportEvent) -> bool>(&self, pred: F) -> usize {
        self.transport.iter().filter(|r| pred(&r.event)).count()
    }

    /// A deterministic fingerprint of the run's observable behaviour
    /// (FNV-1a over the flow summary, queue counters and every delivery
    /// timestamp). Two runs of the same (config, trace, seed) must produce
    /// the same digest — this is the replay-determinism hook the regression
    /// corpus uses to verify that replays reproduce a stored finding exactly,
    /// not merely with a similar score.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        let f = self.flow();
        for v in [
            f.delivered_packets,
            f.delivered_bytes,
            f.transmissions,
            f.retransmissions,
            f.marked_lost,
            f.queue_drops,
            f.rto_count,
            f.recovery_episodes,
            f.final_srtt_us,
            f.min_rtt_us,
            f.highest_sent,
            f.final_cum_ack,
            self.cross_delivered,
            self.cross_dropped,
            self.events_processed,
            self.truncated as u64,
        ] {
            mix(v);
        }
        for t in self.delivery_times() {
            mix(t.as_nanos());
        }
        // ECN extends the digest only when the run actually produced marks
        // or echoes: a drop-tail (or mark-free AQM) run digests exactly as
        // it did before the qdisc layer existed, which keeps every
        // pre-existing golden digest and corpus fixture byte-identical.
        let ecn_active = self.queue_counters.total_marked() > 0
            || self.flows.iter().any(|fs| {
                let f = &fs.summary;
                f.ce_marked + f.ce_received + f.ece_echoed + f.ece_acked > 0
            });
        if ecn_active {
            mix(self.queue_counters.marked_cca);
            mix(self.queue_counters.marked_cross);
            for fs in &self.flows {
                let f = &fs.summary;
                for v in [f.ce_marked, f.ce_received, f.ece_echoed, f.ece_acked] {
                    mix(v);
                }
            }
        }
        // Multi-hop runs extend the digest with every hop's queue counters;
        // a single-hop run (hop_counters = [queue_counters], already mixed
        // above through the flow summaries it shaped) digests exactly as it
        // did before the topology engine existed, which keeps every golden
        // digest and corpus fixture byte-identical.
        if self.hop_counters.len() > 1 {
            for c in &self.hop_counters {
                for v in [
                    c.enqueued_cca,
                    c.enqueued_cross,
                    c.dropped_cca,
                    c.dropped_cross,
                    c.dequeued_cca,
                    c.dequeued_cross,
                    c.marked_cca,
                    c.marked_cross,
                ] {
                    mix(v);
                }
            }
        }
        // Secondary flows extend the digest; a single-flow run (whose
        // `flows[0]` is exactly what the legacy accessors above expose)
        // digests exactly as it did before the multi-flow engine existed,
        // which keeps the committed corpus fixtures byte-identical.
        if self.flows.len() > 1 {
            for fs in &self.flows[1..] {
                let f = &fs.summary;
                for v in [
                    f.delivered_packets,
                    f.delivered_bytes,
                    f.transmissions,
                    f.retransmissions,
                    f.marked_lost,
                    f.queue_drops,
                    f.rto_count,
                    f.recovery_episodes,
                    f.final_srtt_us,
                    f.min_rtt_us,
                    f.highest_sent,
                    f.final_cum_ack,
                    fs.sink_received,
                    fs.start.as_nanos(),
                    fs.stop.map(|t| t.as_nanos()).unwrap_or(u64::MAX),
                ] {
                    mix(v);
                }
                for t in &fs.delivery_times {
                    mix(t.as_nanos());
                }
            }
        }
        // A workload run (dynamic arrivals configured) extends the digest
        // with its churn counters and FCT histograms. Classic runs carry
        // `workload: None` and digest exactly as they did before the flow
        // churn engine existed, which keeps every pre-existing golden
        // digest and corpus fixture byte-identical. The retention-cap
        // counter is mixed only when it fired (it never does in the
        // classic ≤32-flow modes).
        if self.delivery_samples_dropped > 0 {
            mix(self.delivery_samples_dropped);
        }
        if let Some(w) = &self.workload {
            for v in [
                w.spawned,
                w.completed,
                w.capped,
                w.active_at_end,
                w.completed_tx,
                w.completed_delivered,
                w.completed_dropped,
            ] {
                mix(v);
            }
            w.fct_mice.digest_into(&mut mix);
            w.fct_elephants.digest_into(&mut mix);
            for s in &w.samples {
                mix(s.size_packets);
                mix(s.fct.as_nanos());
            }
        }
        h
    }

    /// The workload statistics block, if this was a dynamic-arrival run.
    pub fn workload(&self) -> Option<&WorkloadStats> {
        self.workload.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at_ms: u64, flow: FlowId, event: BottleneckEvent) -> BottleneckRecord {
        BottleneckRecord {
            at: SimTime::from_millis(at_ms),
            flow,
            hop: 0,
            size: 1000,
            event,
        }
    }

    #[test]
    fn queuing_delay_extraction() {
        let stats = RunStats {
            bottleneck: vec![
                record(1, FlowId::Cca(0), BottleneckEvent::Enqueued),
                record(
                    3,
                    FlowId::Cca(0),
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::from_millis(2),
                    },
                ),
                record(
                    4,
                    FlowId::CrossTraffic,
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::from_millis(1),
                    },
                ),
            ],
            ..Default::default()
        };
        let cca = stats.queuing_delays(FlowId::Cca(0));
        assert_eq!(cca.len(), 1);
        assert_eq!(cca[0].1, SimDuration::from_millis(2));
        let cross = stats.queuing_delays(FlowId::CrossTraffic);
        assert_eq!(cross.len(), 1);
    }

    #[test]
    fn ingress_and_egress_accumulate() {
        let stats = RunStats {
            bottleneck: vec![
                record(1, FlowId::Cca(0), BottleneckEvent::Enqueued),
                record(2, FlowId::Cca(0), BottleneckEvent::Dropped),
                record(
                    3,
                    FlowId::Cca(0),
                    BottleneckEvent::Dequeued {
                        queuing_delay: SimDuration::ZERO,
                    },
                ),
            ],
            ..Default::default()
        };
        let ingress = stats.ingress_bytes(FlowId::Cca(0));
        assert_eq!(ingress.len(), 2, "drops count as offered load");
        assert_eq!(ingress.last().unwrap().1, 2000);
        let egress = stats.egress_bytes(FlowId::Cca(0));
        assert_eq!(egress.len(), 1);
        assert_eq!(egress.last().unwrap().1, 1000);
    }

    #[test]
    fn transport_event_counting() {
        let stats = RunStats {
            transport: vec![
                TransportRecord {
                    at: SimTime::ZERO,
                    event: TransportEvent::Sent {
                        seq: 0,
                        retransmission: false,
                        delivered_stamp: 0,
                    },
                },
                TransportRecord {
                    at: SimTime::from_millis(1),
                    event: TransportEvent::RtoFired { backoff: 0 },
                },
                TransportRecord {
                    at: SimTime::from_millis(2),
                    event: TransportEvent::RtoFired { backoff: 1 },
                },
            ],
            ..Default::default()
        };
        assert_eq!(
            stats.count_transport(|e| matches!(e, TransportEvent::RtoFired { .. })),
            2
        );
        assert_eq!(
            stats.count_transport(|e| matches!(e, TransportEvent::Sent { .. })),
            1
        );
    }

    fn single_flow_stats(delivery_times: Vec<SimTime>, summary: FlowSummary) -> RunStats {
        RunStats {
            flows: vec![FlowStats {
                summary,
                delivery_times,
                ..Default::default()
            }],
            ..Default::default()
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = single_flow_stats(
            vec![SimTime::from_millis(10), SimTime::from_millis(20)],
            FlowSummary {
                delivered_packets: 2,
                ..Default::default()
            },
        );
        let b = a.clone();
        assert_eq!(a.digest(), b.digest(), "identical runs share a digest");
        let mut c = a.clone();
        c.flows[0].summary.retransmissions = 1;
        assert_ne!(a.digest(), c.digest(), "counter changes alter the digest");
        let mut d = a.clone();
        d.flows[0].delivery_times[1] = SimTime::from_millis(21);
        assert_ne!(a.digest(), d.digest(), "timing changes alter the digest");
    }

    #[test]
    fn legacy_accessors_default_to_empty() {
        let empty = RunStats::default();
        assert_eq!(empty.flow().delivered_packets, 0);
        assert!(empty.delivery_times().is_empty());
        // Golden constant: FNV-1a over sixteen zero u64s (the zeroed
        // summary + counters the accessors fall back to). Pinning the value
        // catches any drift in the EMPTY_FLOW_SUMMARY fallback path.
        assert_eq!(empty.digest(), 0x8421_ae12_6c7c_ed25);
    }

    #[test]
    fn flow_rates_inline_and_spill() {
        let mut rates = FlowRates::new();
        assert!(rates.is_empty());
        for i in 0..4 {
            rates.push(i as f64);
        }
        assert_eq!(rates.len(), 4);
        assert_eq!(rates.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        // Fifth element spills to the heap without losing the first four.
        rates.push(4.0);
        assert_eq!(rates.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        rates.push(5.0);
        assert_eq!(rates.len(), 6);
        let total: f64 = rates.iter().sum();
        assert_eq!(total, 15.0);
    }

    #[test]
    fn serde_roundtrip() {
        let stats = single_flow_stats(
            vec![SimTime::from_millis(10)],
            FlowSummary {
                delivered_packets: 1,
                ..Default::default()
            },
        );
        let json = serde_json::to_string(&stats).unwrap();
        let back: RunStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.flow().delivered_packets, 1);
        assert_eq!(back.delivery_times().len(), 1);
    }
}
