//! # ccfuzz-netsim
//!
//! A packet-level discrete-event network simulator purpose-built for stress
//! testing congestion control algorithms (CCAs). It is the substrate that the
//! CC-Fuzz genetic fuzzer ([`ccfuzz-core`]) drives, replacing the NS3 setup
//! used by the original paper.
//!
//! The simulated topology is the dumbbell from §3.1 of the paper,
//! optionally generalized to a chain of N bottleneck hops with per-flow
//! parking-lot paths (see [`topology`]):
//!
//! ```text
//!   CCA sender ----\                            /---- sink (receiver)
//!                   +--> gateway FIFO --> link +
//!   cross traffic --/    (drop tail)  (bottleneck,
//!                                      fixed rate or trace driven,
//!                                      fixed propagation delay)
//!
//!   multi-hop:  [q0]--link0--> [q1]--link1--> ... [qN-1]--linkN-1--> sink
//!               (each hop: own link model, delay, capacity and qdisc;
//!                each flow: own entry/exit hop)
//! ```
//!
//! * The CCA sender runs a TCP-like transport ([`tcp`]) with SACK, delayed
//!   ACKs, RTO with a configurable minimum (1 s in the paper), fast
//!   retransmit / recovery and Linux-style delivery-rate sampling — the
//!   machinery the paper's BBR and CUBIC findings depend on.
//! * The cross-traffic source injects unresponsive packets according to a
//!   [`trace::TrafficTrace`].
//! * The bottleneck link is either a fixed-rate serializer or a
//!   trace-driven service curve ([`trace::LinkTrace`], MahiMahi-style).
//!
//! Everything is deterministic: simulations are pure functions of
//! (configuration, traces, seed), which is what allows the genetic algorithm
//! to converge (§3.6 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use ccfuzz_netsim::config::SimConfig;
//! use ccfuzz_netsim::sim::Simulation;
//! use ccfuzz_netsim::cc::reference_cc::FixedWindowCc;
//!
//! let cfg = SimConfig::paper_default();
//! let cc = Box::new(FixedWindowCc::new(10));
//! let mut sim = Simulation::new(cfg, cc);
//! let result = sim.run();
//! assert!(result.stats.flow().delivered_packets > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod config;
pub mod crosstraffic;
pub mod event;
pub mod link;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod simtrace;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;
pub mod workload;

pub use config::SimConfig;
pub use sim::{SimResult, Simulation};
pub use time::{SimDuration, SimTime};
