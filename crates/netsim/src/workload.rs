//! Dynamic-flow workload generation: arrival processes and heavy-tailed
//! flow sizes.
//!
//! A bottleneck serving internet-scale traffic sees a churning population
//! of short "mice" transfers (web requests, RPCs) arriving on top of a few
//! long-lived "elephants" — not the fixed set of bulk flows the classic
//! scenarios model. [`ArrivalConfig`] describes such a workload: a Poisson
//! or ON/OFF arrival process paired with a bounded-Pareto flow-size
//! distribution. The simulator turns it into a stream of
//! [`Event::FlowArrival`](crate::event::Event) events, spawning an
//! application-limited flow per arrival through the flow slab (see
//! `sim.rs`) and recording a flow-completion-time sample when each one's
//! byte budget has been delivered.
//!
//! Everything here is sampled on the fly from a [`SimRng`](crate::rng::SimRng)
//! forked off the scenario seed, so a workload of 100k arrivals costs O(1)
//! memory and the run stays a pure function of its configuration.

use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How dynamic flow inter-arrival times are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_per_sec`.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Bursty arrivals: exponential gaps at `rate_per_sec` during ON
    /// periods, silence during OFF periods. Period lengths are themselves
    /// exponential with the given means, which models request-response
    /// incast bursts.
    OnOff {
        /// Mean arrivals per second while ON.
        rate_per_sec: f64,
        /// Mean ON period length in seconds.
        mean_on_secs: f64,
        /// Mean OFF period length in seconds.
        mean_off_secs: f64,
    },
}

impl ArrivalProcess {
    /// The in-burst arrival rate.
    pub fn rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::OnOff { rate_per_sec, .. } => rate_per_sec,
        }
    }

    /// Long-run average arrivals per second (ON duty cycle applied).
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::OnOff {
                rate_per_sec,
                mean_on_secs,
                mean_off_secs,
            } => rate_per_sec * mean_on_secs / (mean_on_secs + mean_off_secs),
        }
    }
}

/// Bounded-Pareto flow sizes in packets: the canonical heavy-tailed
/// mice-vs-elephants mix. `shape` near 1.1–1.3 reproduces measured web
/// flow-size tails; the bounds keep single samples from exceeding what a
/// run could ever deliver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SizeDistribution {
    /// Pareto tail index (alpha). Smaller = heavier tail.
    pub shape: f64,
    /// Smallest flow size in packets (inclusive).
    pub min_packets: u64,
    /// Largest flow size in packets (inclusive truncation bound).
    pub max_packets: u64,
}

impl SizeDistribution {
    /// Draws one flow size by inverting the bounded-Pareto CDF.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let l = self.min_packets as f64;
        let h = self.max_packets as f64;
        let a = self.shape;
        let u = rng.next_f64();
        // Inverse CDF of the Pareto truncated to [l, h].
        let ratio = (l / h).powf(a);
        let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / a);
        (x as u64).clamp(self.min_packets, self.max_packets)
    }
}

/// Configuration of a dynamic-flow workload. `SimConfig::arrivals` being
/// `Some` is what switches the simulator's flow-churn engine on; every
/// existing mode leaves it `None` and behaves (and digests) exactly as
/// before.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// The flow-size distribution.
    pub size: SizeDistribution,
    /// Flows at or below this many packets count as "mice" for FCT
    /// reporting; larger flows are "elephants".
    pub mice_threshold_packets: u64,
    /// Cap on concurrently live dynamic flows (the slab never grows past
    /// this); arrivals hitting the cap are counted in
    /// `WorkloadStats::capped` and skipped.
    pub max_concurrent: u32,
    /// Cap on total spawned flows over the run (safety valve against
    /// degenerate rate × duration products).
    pub max_arrivals: u64,
}

impl ArrivalConfig {
    /// A small default workload: ~40 mice/s with a heavy tail, a handful
    /// concurrent.
    pub fn paper_default() -> Self {
        ArrivalConfig {
            process: ArrivalProcess::Poisson { rate_per_sec: 40.0 },
            size: SizeDistribution {
                shape: 1.2,
                min_packets: 2,
                max_packets: 2000,
            },
            mice_threshold_packets: 32,
            max_concurrent: 64,
            max_arrivals: 100_000,
        }
    }

    /// Validates parameter ranges, mirroring `SimConfig::validate`'s
    /// descriptive-error style.
    pub fn validate(&self) -> Result<(), String> {
        let rate = self.process.rate_per_sec();
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("arrival rate must be positive, got {rate}"));
        }
        if rate > 1_000_000.0 {
            return Err(format!(
                "arrival rate {rate}/s is implausibly high (max 1e6)"
            ));
        }
        if let ArrivalProcess::OnOff {
            mean_on_secs,
            mean_off_secs,
            ..
        } = self.process
        {
            if !mean_on_secs.is_finite() || mean_on_secs <= 0.0 {
                return Err(format!("ON period must be positive, got {mean_on_secs}"));
            }
            if !mean_off_secs.is_finite() || mean_off_secs <= 0.0 {
                return Err(format!("OFF period must be positive, got {mean_off_secs}"));
            }
        }
        if !self.size.shape.is_finite() || self.size.shape <= 0.0 {
            return Err(format!(
                "Pareto shape must be positive, got {}",
                self.size.shape
            ));
        }
        if self.size.min_packets == 0 {
            return Err("minimum flow size must be at least 1 packet".into());
        }
        if self.size.max_packets < self.size.min_packets {
            return Err(format!(
                "flow size bounds inverted: min {} > max {}",
                self.size.min_packets, self.size.max_packets
            ));
        }
        if self.mice_threshold_packets == 0 {
            return Err("mice threshold must be at least 1 packet".into());
        }
        if self.max_concurrent == 0 {
            return Err("max concurrent dynamic flows must be at least 1".into());
        }
        if self.max_concurrent as u64 > MAX_DYNAMIC_SLOTS {
            return Err(format!(
                "max concurrent dynamic flows {} exceeds the slab limit {MAX_DYNAMIC_SLOTS}",
                self.max_concurrent
            ));
        }
        if self.max_arrivals == 0 {
            return Err("max arrivals must be at least 1".into());
        }
        Ok(())
    }

    /// Whether a flow of `size_packets` counts as a mouse.
    pub fn is_mouse(&self, size_packets: u64) -> bool {
        size_packets <= self.mice_threshold_packets
    }

    /// Draws one exponential inter-arrival gap at the in-burst rate.
    pub fn sample_gap(&self, rng: &mut SimRng) -> SimDuration {
        exp_duration(self.process.rate_per_sec(), rng)
    }
}

/// An exponential duration with mean `1/rate_per_sec`, floored at 1 ns so
/// consecutive arrivals keep distinct calendar slots.
pub(crate) fn exp_duration(rate_per_sec: f64, rng: &mut SimRng) -> SimDuration {
    // Nudge away from ln(0); matches SimRng::gen_normal's guard.
    let u = rng.next_f64().max(1e-12);
    let secs = -u.ln() / rate_per_sec;
    SimDuration::from_nanos(((secs * 1e9) as u64).max(1))
}

// ---------------------------------------------------------------------------
// Dynamic flow handles
// ---------------------------------------------------------------------------
//
// Events and packets identify CCA flows with a `u32`. Static flows use
// their plain table index (so every pre-existing event stream is encoded
// exactly as before); dynamic flows set the top bit and pack a slab slot
// plus a 15-bit recycle generation:
//
//     bit 31      = dynamic flag
//     bits 30..16 = slot generation (wraps at 2^15)
//     bits 15..0  = slab slot index
//
// A timer event that outlives its flow carries a stale generation and is
// discarded on decode; packets and ACKs can never go stale because each one
// holds an `in_network` reference that blocks the slot's recycling.

/// Top bit of a flow handle: set for slab-allocated dynamic flows.
pub const DYN_FLOW_FLAG: u32 = 0x8000_0000;
/// Maximum slab slots addressable by a dynamic handle.
pub const MAX_DYNAMIC_SLOTS: u64 = 1 << 16;
/// Generation values wrap at this modulus (15 bits).
pub const GEN_MODULUS: u16 = 1 << 15;

/// Encodes a slab slot + generation into a dynamic flow handle.
#[inline]
pub fn dyn_handle(slot: u16, generation: u16) -> u32 {
    DYN_FLOW_FLAG | ((generation as u32 & 0x7FFF) << 16) | slot as u32
}

/// Whether a raw flow handle refers to a dynamic (slab) flow.
#[inline]
pub fn is_dynamic(raw: u32) -> bool {
    raw & DYN_FLOW_FLAG != 0
}

/// The slab slot of a dynamic handle.
#[inline]
pub fn dyn_slot(raw: u32) -> usize {
    (raw & 0xFFFF) as usize
}

/// The generation of a dynamic handle.
#[inline]
pub fn dyn_generation(raw: u32) -> u16 {
    ((raw >> 16) & 0x7FFF) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_round_trips() {
        for &(slot, generation) in &[(0u16, 0u16), (1, 1), (65535, 32767), (513, 9)] {
            let h = dyn_handle(slot, generation);
            assert!(is_dynamic(h));
            assert_eq!(dyn_slot(h), slot as usize);
            assert_eq!(dyn_generation(h), generation);
        }
        assert!(!is_dynamic(0));
        assert!(!is_dynamic(31));
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skews_small() {
        let dist = SizeDistribution {
            shape: 1.2,
            min_packets: 2,
            max_packets: 2000,
        };
        let mut rng = SimRng::new(7);
        let mut small = 0usize;
        for _ in 0..5000 {
            let s = dist.sample(&mut rng);
            assert!((2..=2000).contains(&s), "sample {s} out of bounds");
            if s <= 32 {
                small += 1;
            }
        }
        // A heavy-tailed mix is mostly mice.
        assert!(small > 3500, "only {small}/5000 samples were mice");
    }

    #[test]
    fn poisson_gaps_average_the_configured_rate() {
        let cfg = ArrivalConfig::paper_default();
        let mut rng = SimRng::new(11);
        let mut total = SimDuration::ZERO;
        let n = 4000;
        for _ in 0..n {
            total += cfg.sample_gap(&mut rng);
        }
        let mean_secs = total.as_secs_f64() / n as f64;
        let expect = 1.0 / cfg.process.rate_per_sec();
        assert!(
            (mean_secs - expect).abs() < expect * 0.1,
            "mean gap {mean_secs} vs expected {expect}"
        );
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut cfg = ArrivalConfig::paper_default();
        cfg.process = ArrivalProcess::Poisson { rate_per_sec: 0.0 };
        assert!(cfg.validate().is_err());
        let mut cfg = ArrivalConfig::paper_default();
        cfg.size.max_packets = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = ArrivalConfig::paper_default();
        cfg.max_concurrent = 0;
        assert!(cfg.validate().is_err());
        assert!(ArrivalConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ArrivalConfig {
            process: ArrivalProcess::OnOff {
                rate_per_sec: 200.0,
                mean_on_secs: 0.05,
                mean_off_secs: 0.2,
            },
            ..ArrivalConfig::paper_default()
        };
        let v = cfg.to_value();
        let back = ArrivalConfig::from_value(&v).expect("round trip");
        assert_eq!(back, cfg);
    }
}
