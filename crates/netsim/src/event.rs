//! Discrete-event calendar.
//!
//! A bucketed calendar queue with **stable, deterministic ordering**: events
//! scheduled for the same instant fire in the order they were scheduled.
//! Determinism here is essential — the genetic algorithm assumes that
//! re-evaluating the same trace yields exactly the same score (§3.6 of the
//! paper).
//!
//! ## Why not a binary heap?
//!
//! The original implementation was a `BinaryHeap<ScheduledEvent>` whose
//! entries carried whole packets (~100 bytes with inline SACK state); every
//! push/pop sifted those fat entries through `log n` levels. The calendar
//! queue exploits what a heap cannot: simulation time only moves forward and
//! event timestamps cluster tightly around "now" (serialization times,
//! RTTs). Events land in a ring of fixed-width time buckets; a bucket is
//! sorted **lazily, once**, when the clock reaches it, so the common case is
//! an O(1) append and an O(1) pop of a 32-byte entry. Events beyond the
//! ring's horizon wait in a small min-heap and migrate into the ring as it
//! rotates.
//!
//! ## Determinism contract
//!
//! Pops are globally ordered by `(timestamp, schedule sequence)` — exactly
//! the order the binary heap produced:
//! * buckets partition time, so cross-bucket order is automatic;
//! * within a bucket, the lazy sort orders by `(at, seq)`;
//! * events scheduled into the *currently draining* bucket are placed by
//!   binary search on `(at, seq)`, preserving FIFO among equal timestamps
//!   (their sequence numbers are necessarily the largest so far).
//!
//! Payload-carrying events ([`Event::GatewayArrival`], [`Event::SinkArrival`],
//! [`Event::AckArrival`]) reference packets parked in the simulation's
//! [`PacketPool`](crate::packet::PacketPool) by 4-byte handle, which keeps
//! [`Event`] register-sized and clone-free: the hot timer events and the
//! payload events are the same small value type.

use crate::packet::{AckRef, PacketRef};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event in the simulation.
///
/// Per-flow events carry the index of the CCA flow they belong to, so that
/// N concurrent congestion-controlled senders can share one event calendar.
/// The enum is deliberately small (16 bytes): packets are parked in the
/// simulation's packet pool and referenced by handle, and the enum derives
/// neither `Clone` nor `PartialEq` — it is moved, exactly once, from
/// `schedule` to `pop`.
#[derive(Debug)]
pub enum Event {
    /// A CCA flow starts sending.
    FlowStart {
        /// Index of the flow that starts.
        flow: u32,
    },
    /// A data packet arrives at a hop's gateway queue (from any source:
    /// a sender's access link, the previous hop, or cross traffic).
    GatewayArrival {
        /// Index of the hop whose queue the packet reaches (0 in the
        /// paper's single-bottleneck dumbbell).
        hop: u32,
        /// Handle of the parked data packet.
        pkt: PacketRef,
    },
    /// A hop's link finishes serializing / reaches a transmission
    /// opportunity and can pull the next packet from that hop's queue.
    LinkReady {
        /// Index of the hop whose link became ready.
        hop: u32,
    },
    /// A data packet, having crossed the last hop on its path, arrives at
    /// the sink.
    SinkArrival(PacketRef),
    /// An ACK arrives back at a CCA sender.
    AckArrival {
        /// Index of the flow the ACK belongs to.
        flow: u32,
        /// Handle of the parked acknowledgement.
        ack: AckRef,
    },
    /// A sender's retransmission timer fires (armed for this sequence and
    /// this particular arming generation, to invalidate stale timers).
    RtoTimer {
        /// Index of the flow whose timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A receiver's delayed-ACK timer fires.
    DelayedAckTimer {
        /// Index of the flow whose receiver timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A sender's pacing timer fires (used by paced CCAs such as BBR).
    PacingTimer {
        /// Index of the flow whose pacing timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// Periodic statistics sampling tick.
    StatsTick,
}

/// Bucket width: 2^20 ns ≈ 1.05 ms, on the order of one packet serialization
/// time at the paper's 12 Mbps bottleneck, so adjacent events share buckets
/// without piling the whole run into one.
const BUCKET_SHIFT: u32 = 20;
/// Ring size: 4096 buckets ≈ 4.3 s of horizon; almost every event of a
/// typical scenario is schedulable directly into the ring.
const NUM_BUCKETS: usize = 4096;

#[derive(Debug)]
struct ScheduledEvent {
    at: u64,
    seq: u64,
    event: Event,
}

impl ScheduledEvent {
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) event is popped first from the overflow heap.
        other.key().cmp(&self.key())
    }
}

/// The future event list.
pub struct EventQueue {
    /// Ring of time buckets; `buckets[cursor]` covers
    /// `[cursor_start, cursor_start + width)`.
    buckets: Vec<Vec<ScheduledEvent>>,
    cursor: usize,
    /// Bucket-aligned nanosecond timestamp of the cursor bucket's range.
    cursor_start: u64,
    /// Consumed prefix of the cursor bucket (only ever non-zero once the
    /// bucket has been sorted).
    pos: usize,
    /// Whether the cursor bucket's remainder is sorted by `(at, seq)`.
    sorted: bool,
    /// Events beyond the ring horizon, min-first on `(at, seq)`.
    overflow: BinaryHeap<ScheduledEvent>,
    /// Events currently in the ring.
    ring_len: usize,
    /// Total pending events (ring + overflow).
    len: usize,
    next_seq: u64,
    now: SimTime,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty event queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 0,
            cursor_start: 0,
            pos: 0,
            sorted: false,
            overflow: BinaryHeap::new(),
            ring_len: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Clears the queue back to time zero, keeping every allocation (bucket
    /// capacity, overflow heap) for reuse by the next simulation run.
    pub fn reset(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cursor = 0;
        self.cursor_start = 0;
        self.pos = 0;
        self.sorted = false;
        self.overflow.clear();
        self.ring_len = 0;
        self.len = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn horizon_end(&self) -> u64 {
        self.cursor_start + ((NUM_BUCKETS as u64) << BUCKET_SHIFT)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the simulator; in release
    /// builds the event is clamped to "now" to keep time monotone.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now).as_nanos();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = ScheduledEvent { at, seq, event };

        if at >= self.horizon_end() {
            self.overflow.push(entry);
            return;
        }
        debug_assert!(at >= self.cursor_start);
        let delta = ((at - self.cursor_start) >> BUCKET_SHIFT) as usize;
        let idx = (self.cursor + delta) & (NUM_BUCKETS - 1);
        self.ring_len += 1;
        let bucket = &mut self.buckets[idx];
        if delta == 0 && self.sorted {
            // The cursor bucket is mid-drain: keep its remainder sorted.
            // `seq` is the largest so far, so the slot is right after every
            // pending event with `at' <= at`.
            let tail = &bucket[self.pos..];
            let offset = tail.partition_point(|e| e.at <= at);
            bucket.insert(self.pos + offset, entry);
        } else {
            bucket.push(entry);
        }
    }

    /// Pops the next event, advancing the simulation clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.pos < self.buckets[self.cursor].len() {
                if !self.sorted {
                    debug_assert_eq!(self.pos, 0);
                    self.buckets[self.cursor].sort_unstable_by_key(|e| e.key());
                    self.sorted = true;
                }
                let bucket = &mut self.buckets[self.cursor];
                let entry = if self.pos + 1 == bucket.len() {
                    // Last pending entry: take it and recycle the bucket.
                    let entry = bucket.pop().expect("bucket non-empty");
                    bucket.clear();
                    self.pos = 0;
                    self.sorted = false;
                    entry
                } else {
                    let entry = std::mem::replace(
                        &mut bucket[self.pos],
                        ScheduledEvent {
                            at: 0,
                            seq: 0,
                            event: Event::LinkReady { hop: 0 },
                        },
                    );
                    self.pos += 1;
                    entry
                };
                self.ring_len -= 1;
                self.len -= 1;
                let at = SimTime::from_nanos(entry.at);
                debug_assert!(at >= self.now);
                self.now = at;
                return Some((at, entry.event));
            }

            // Cursor bucket exhausted.
            self.pos = 0;
            self.sorted = false;
            if self.ring_len == 0 {
                // Ring drained: jump the window straight to the earliest
                // overflow event instead of rotating bucket by bucket.
                let min_at = self.overflow.peek().expect("len > 0").at;
                self.cursor = 0;
                self.cursor_start = (min_at >> BUCKET_SHIFT) << BUCKET_SHIFT;
            } else {
                self.cursor = (self.cursor + 1) & (NUM_BUCKETS - 1);
                self.cursor_start += 1 << BUCKET_SHIFT;
            }
            self.migrate_overflow();
        }
    }

    /// Moves overflow events that now fall inside the ring's horizon into
    /// their buckets.
    fn migrate_overflow(&mut self) {
        let end = self.horizon_end();
        while let Some(head) = self.overflow.peek() {
            if head.at >= end {
                break;
            }
            let entry = self.overflow.pop().expect("peeked");
            let delta = ((entry.at - self.cursor_start) >> BUCKET_SHIFT) as usize;
            let idx = (self.cursor + delta) & (NUM_BUCKETS - 1);
            self.buckets[idx].push(entry);
            self.ring_len += 1;
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // The first non-empty bucket from the cursor holds the global
        // minimum (buckets partition time; overflow is beyond the horizon).
        for step in 0..NUM_BUCKETS {
            let idx = (self.cursor + step) & (NUM_BUCKETS - 1);
            let from = if step == 0 { self.pos } else { 0 };
            let bucket = &self.buckets[idx];
            if from < bucket.len() {
                let min = bucket[from..]
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("non-empty slice");
                return Some(SimTime::from_nanos(min));
            }
        }
        self.overflow.peek().map(|e| SimTime::from_nanos(e.at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::LinkReady { hop: 0 });
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(20), Event::StatsTick);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, t(10));
        assert_eq!(q.pop().unwrap().0, t(20));
        assert_eq!(q.pop().unwrap().0, t(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 1,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 2,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 3,
            },
        );
        let gens: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::RtoTimer { generation, .. } => generation,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(gens, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(10) + SimDuration::from_millis(5), Event::StatsTick);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        assert_eq!(q.peek_time(), Some(t(15)));
        q.pop();
        assert_eq!(q.now(), t(15));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                // Lots of identical timestamps to stress tie-breaking.
                q.schedule(
                    t(i % 7),
                    Event::RtoTimer {
                        flow: 0,
                        generation: i,
                    },
                );
            }
            let mut order = Vec::new();
            while let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
                order.push((at, generation));
            }
            order
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn matches_reference_order_under_interleaved_load() {
        // Exhaustive cross-check against a sorted reference: random-ish
        // schedule times (including far beyond the ring horizon and repeats
        // of "now"), interleaved with pops, must produce the exact global
        // (at, seq) order the binary-heap implementation guaranteed.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        let advance = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            *x
        };
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..2_000u64 {
            // Schedule 0..3 events at pseudo-random offsets from now, some
            // at now exactly, some dozens of seconds out (overflow).
            for _ in 0..(advance(&mut x) % 4) {
                let r = advance(&mut x);
                let offset_ns = match r % 5 {
                    0 => 0,
                    1 => r % 1_000,                          // sub-microsecond
                    2 => r % 5_000_000,                      // sub-bucket range
                    3 => r % 1_000_000_000,                  // within horizon
                    _ => 5_000_000_000 + r % 30_000_000_000, // beyond horizon
                };
                let at = q.now() + SimDuration::from_nanos(offset_ns);
                reference.push((at.as_nanos(), seq));
                q.schedule(
                    at,
                    Event::RtoTimer {
                        flow: 0,
                        generation: seq,
                    },
                );
                seq += 1;
            }
            if round % 2 == 0 {
                if let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
                    popped.push((at.as_nanos(), generation));
                }
            }
        }
        while let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
            popped.push((at.as_nanos(), generation));
        }
        // Interleaving pops with schedules only ever removes the current
        // minimum, so the concatenated pop order must equal the fully
        // sorted reference.
        reference.sort_unstable();
        assert_eq!(popped.len(), reference.len());
        assert_eq!(popped, reference);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Way beyond the ring horizon (~4.3 s): must park in overflow and
        // still pop in order.
        q.schedule(SimTime::from_secs_f64(100.0), Event::StatsTick);
        q.schedule(SimTime::from_secs_f64(50.0), Event::LinkReady { hop: 0 });
        q.schedule(t(1), Event::FlowStart { flow: 0 });
        assert_eq!(q.pop().unwrap().0, t(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs_f64(50.0));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs_f64(100.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn reset_recycles_the_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Event::StatsTick);
        q.schedule(SimTime::from_secs_f64(60.0), Event::LinkReady { hop: 0 });
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        // Sequence numbers restart, so tie-breaking behaves like a fresh queue.
        q.schedule(t(5), Event::StatsTick);
        q.schedule(t(5), Event::LinkReady { hop: 0 });
        assert!(matches!(q.pop(), Some((_, Event::StatsTick))));
        assert!(matches!(q.pop(), Some((_, Event::LinkReady { hop: 0 }))));
    }
}
