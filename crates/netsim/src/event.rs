//! Discrete-event calendar.
//!
//! A bucketed calendar queue with **stable, deterministic ordering**: events
//! scheduled for the same instant fire in the order they were scheduled.
//! Determinism here is essential — the genetic algorithm assumes that
//! re-evaluating the same trace yields exactly the same score (§3.6 of the
//! paper).
//!
//! ## Why not a binary heap?
//!
//! The original implementation was a `BinaryHeap<ScheduledEvent>` whose
//! entries carried whole packets (~100 bytes with inline SACK state); every
//! push/pop sifted those fat entries through `log n` levels. The calendar
//! queue exploits what a heap cannot: simulation time only moves forward and
//! event timestamps cluster tightly around "now" (serialization times,
//! RTTs). Events land in a ring of fixed-width time buckets; a bucket is
//! sorted **lazily, once**, when the clock reaches it, so the common case is
//! an O(1) append and an O(1) pop of a 32-byte entry.
//!
//! Events beyond the ring's horizon live in a **hierarchical second level**:
//! a coarse wheel of [`L2_BUCKETS`] slots, each spanning the entire
//! fine ring's horizon (2^32 ns ≈ 4.3 s, for a combined reach of ≈ 4.6
//! minutes). Scheduling into it is an O(1) push; as the fine ring rotates,
//! any slot whose tracked minimum falls inside the new horizon drains into
//! the fine buckets — each event is touched O(1) amortized times instead of
//! paying the `log n` sift of the old overflow `BinaryHeap`. Only events
//! beyond even the coarse wheel (long-RTO backoff in pathological scenarios)
//! fall back to a heap, which real workloads never populate.
//!
//! ## Determinism contract
//!
//! Pops are globally ordered by `(timestamp, schedule sequence)` — exactly
//! the order the binary heap produced:
//! * buckets partition time, so cross-bucket order is automatic;
//! * within a bucket, the lazy sort orders by `(at, seq)`;
//! * events scheduled into the *currently draining* bucket are placed by
//!   binary search on `(at, seq)`, preserving FIFO among equal timestamps
//!   (their sequence numbers are necessarily the largest so far).
//!
//! Payload-carrying events ([`Event::GatewayArrival`], [`Event::SinkArrival`],
//! [`Event::AckArrival`]) reference packets parked in the simulation's
//! [`PacketPool`](crate::packet::PacketPool) by 4-byte handle, which keeps
//! [`Event`] register-sized and clone-free: the hot timer events and the
//! payload events are the same small value type.

use crate::packet::{AckRef, PacketRef};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event in the simulation.
///
/// Per-flow events carry the index of the CCA flow they belong to, so that
/// N concurrent congestion-controlled senders can share one event calendar.
/// The enum is deliberately small (16 bytes): packets are parked in the
/// simulation's packet pool and referenced by handle, and the enum derives
/// neither `Clone` nor `PartialEq` — it is moved, exactly once, from
/// `schedule` to `pop`.
#[derive(Debug)]
pub enum Event {
    /// A CCA flow starts sending.
    FlowStart {
        /// Index of the flow that starts.
        flow: u32,
    },
    /// A data packet arrives at a hop's gateway queue (from any source:
    /// a sender's access link, the previous hop, or cross traffic).
    GatewayArrival {
        /// Index of the hop whose queue the packet reaches (0 in the
        /// paper's single-bottleneck dumbbell).
        hop: u32,
        /// Handle of the parked data packet.
        pkt: PacketRef,
    },
    /// A hop's link finishes serializing / reaches a transmission
    /// opportunity and can pull the next packet from that hop's queue.
    LinkReady {
        /// Index of the hop whose link became ready.
        hop: u32,
    },
    /// A data packet, having crossed the last hop on its path, arrives at
    /// the sink.
    SinkArrival(PacketRef),
    /// An ACK arrives back at a CCA sender.
    AckArrival {
        /// Index of the flow the ACK belongs to.
        flow: u32,
        /// Handle of the parked acknowledgement.
        ack: AckRef,
    },
    /// A sender's retransmission timer fires (armed for this sequence and
    /// this particular arming generation, to invalidate stale timers).
    RtoTimer {
        /// Index of the flow whose timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A receiver's delayed-ACK timer fires.
    DelayedAckTimer {
        /// Index of the flow whose receiver timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A sender's pacing timer fires (used by paced CCAs such as BBR).
    PacingTimer {
        /// Index of the flow whose pacing timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// Periodic statistics sampling tick.
    StatsTick,
    /// The workload arrival process fires: spawn one dynamic flow (see
    /// [`crate::workload`]) and draw the next arrival. Only scheduled when
    /// `SimConfig::arrivals` is configured.
    FlowArrival,
}

/// Bucket width: 2^20 ns ≈ 1.05 ms, on the order of one packet serialization
/// time at the paper's 12 Mbps bottleneck, so adjacent events share buckets
/// without piling the whole run into one.
const BUCKET_SHIFT: u32 = 20;
/// Ring size: 4096 buckets ≈ 4.3 s of horizon; almost every event of a
/// typical scenario is schedulable directly into the ring.
const NUM_BUCKETS: usize = 4096;
/// Second-level slot width: one slot covers the whole fine ring's span
/// (4096 × 2^20 = 2^32 ns ≈ 4.3 s).
const L2_SHIFT: u32 = BUCKET_SHIFT + 12;
/// Second-level slot count: 64 × 4.3 s ≈ 4.6 minutes of coarse horizon.
const L2_BUCKETS: usize = 64;

/// One slot of the coarse wheel: an unsorted event list plus its tracked
/// minimum timestamp, so the per-rotation "anything due?" check is a single
/// integer compare.
#[derive(Debug)]
struct L2Slot {
    events: Vec<ScheduledEvent>,
    /// Minimum `at` among `events` (`u64::MAX` when empty). A lower bound is
    /// maintained exactly: pushes take `min`, drains recompute.
    min_at: u64,
}

impl Default for L2Slot {
    fn default() -> Self {
        L2Slot {
            events: Vec::new(),
            min_at: u64::MAX,
        }
    }
}

#[derive(Debug)]
struct ScheduledEvent {
    at: u64,
    seq: u64,
    event: Event,
}

impl ScheduledEvent {
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) event is popped first from the overflow heap.
        other.key().cmp(&self.key())
    }
}

/// The future event list.
pub struct EventQueue {
    /// Ring of time buckets; `buckets[cursor]` covers
    /// `[cursor_start, cursor_start + width)`.
    buckets: Vec<Vec<ScheduledEvent>>,
    cursor: usize,
    /// Bucket-aligned nanosecond timestamp of the cursor bucket's range.
    cursor_start: u64,
    /// Consumed prefix of the cursor bucket (only ever non-zero once the
    /// bucket has been sorted).
    pos: usize,
    /// Whether the cursor bucket's remainder is sorted by `(at, seq)`.
    sorted: bool,
    /// Coarse second-level wheel: events beyond the fine ring's horizon,
    /// slotted by `(at >> L2_SHIFT) & (L2_BUCKETS - 1)`.
    l2: Vec<L2Slot>,
    /// Events currently in the coarse wheel.
    l2_len: usize,
    /// Events beyond even the coarse wheel's horizon, min-first on
    /// `(at, seq)`. Practically always empty.
    far: BinaryHeap<ScheduledEvent>,
    /// Events currently in the ring.
    ring_len: usize,
    /// Total pending events (ring + overflow).
    len: usize,
    next_seq: u64,
    now: SimTime,
}

impl Default for EventQueue {
    /// A *non-allocating* empty placeholder: no ring or wheel storage.
    /// This is what `mem::take` leaves behind when a queue moves between
    /// an arena and a simulation — it must not pay for bucket vectors that
    /// are thrown away unused (the generation arena's zero-allocation
    /// guarantee counts them). [`EventQueue::reset`] materializes real
    /// storage, and every arena path resets before scheduling.
    fn default() -> Self {
        EventQueue {
            buckets: Vec::new(),
            cursor: 0,
            cursor_start: 0,
            pos: 0,
            sorted: false,
            l2: Vec::new(),
            l2_len: 0,
            far: BinaryHeap::new(),
            ring_len: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl EventQueue {
    /// Creates an empty event queue positioned at time zero.
    pub fn new() -> Self {
        let mut q = EventQueue::default();
        q.reset();
        q
    }

    /// Clears the queue back to time zero, keeping every allocation (bucket
    /// capacity, overflow heap) for reuse by the next simulation run. On a
    /// placeholder queue (see [`Default`]) this materializes the ring and
    /// wheel storage.
    pub fn reset(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = (0..NUM_BUCKETS).map(|_| Vec::new()).collect();
        }
        if self.l2.is_empty() {
            self.l2 = (0..L2_BUCKETS).map(|_| L2Slot::default()).collect();
        }
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.cursor = 0;
        self.cursor_start = 0;
        self.pos = 0;
        self.sorted = false;
        for slot in &mut self.l2 {
            slot.events.clear();
            slot.min_at = u64::MAX;
        }
        self.l2_len = 0;
        self.far.clear();
        self.ring_len = 0;
        self.len = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn horizon_end(&self) -> u64 {
        self.cursor_start + ((NUM_BUCKETS as u64) << BUCKET_SHIFT)
    }

    /// End of the coarse wheel's reach: [`L2_BUCKETS`] slots starting at the
    /// slot containing the fine ring's window. The slot holding
    /// `cursor_start` itself is provably empty of schedulable events (they
    /// would fall inside the fine horizon), so no epoch collision is
    /// possible within this bound.
    fn l2_horizon_end(&self) -> u64 {
        ((self.cursor_start >> L2_SHIFT) << L2_SHIFT) + ((L2_BUCKETS as u64) << L2_SHIFT)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the simulator; in release
    /// builds the event is clamped to "now" to keep time monotone.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now).as_nanos();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = ScheduledEvent { at, seq, event };

        if at >= self.horizon_end() {
            if at < self.l2_horizon_end() {
                let slot = &mut self.l2[((at >> L2_SHIFT) as usize) & (L2_BUCKETS - 1)];
                slot.min_at = slot.min_at.min(at);
                slot.events.push(entry);
                self.l2_len += 1;
            } else {
                self.far.push(entry);
            }
            return;
        }
        debug_assert!(at >= self.cursor_start);
        let delta = ((at - self.cursor_start) >> BUCKET_SHIFT) as usize;
        let idx = (self.cursor + delta) & (NUM_BUCKETS - 1);
        self.ring_len += 1;
        let bucket = &mut self.buckets[idx];
        if delta == 0 && self.sorted {
            // The cursor bucket is mid-drain: keep its remainder sorted.
            // `seq` is the largest so far, so the slot is right after every
            // pending event with `at' <= at`.
            let tail = &bucket[self.pos..];
            let offset = tail.partition_point(|e| e.at <= at);
            bucket.insert(self.pos + offset, entry);
        } else {
            bucket.push(entry);
        }
    }

    /// Pops the next event, advancing the simulation clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.pos < self.buckets[self.cursor].len() {
                if !self.sorted {
                    debug_assert_eq!(self.pos, 0);
                    self.buckets[self.cursor].sort_unstable_by_key(|e| e.key());
                    self.sorted = true;
                }
                let bucket = &mut self.buckets[self.cursor];
                let entry = if self.pos + 1 == bucket.len() {
                    // Last pending entry: take it and recycle the bucket.
                    let entry = bucket.pop().expect("bucket non-empty");
                    bucket.clear();
                    self.pos = 0;
                    self.sorted = false;
                    entry
                } else {
                    let entry = std::mem::replace(
                        &mut bucket[self.pos],
                        ScheduledEvent {
                            at: 0,
                            seq: 0,
                            event: Event::LinkReady { hop: 0 },
                        },
                    );
                    self.pos += 1;
                    entry
                };
                self.ring_len -= 1;
                self.len -= 1;
                let at = SimTime::from_nanos(entry.at);
                debug_assert!(at >= self.now);
                self.now = at;
                return Some((at, entry.event));
            }

            // Cursor bucket exhausted.
            self.pos = 0;
            self.sorted = false;
            if self.ring_len == 0 {
                // Ring drained: jump the window straight to the earliest
                // pending event instead of rotating bucket by bucket.
                let min_at = self.beyond_min().expect("len > 0");
                self.cursor = 0;
                self.cursor_start = (min_at >> BUCKET_SHIFT) << BUCKET_SHIFT;
                self.migrate_far();
                // The new fine window straddles at most two coarse slots:
                // the one holding `cursor_start` and its successor.
                let end = self.horizon_end();
                let first = (self.cursor_start >> L2_SHIFT) as usize;
                self.drain_l2_slot(first & (L2_BUCKETS - 1), end);
                self.drain_l2_slot((first + 1) & (L2_BUCKETS - 1), end);
            } else {
                self.cursor = (self.cursor + 1) & (NUM_BUCKETS - 1);
                self.cursor_start += 1 << BUCKET_SHIFT;
                // The horizon gained one fine-bucket width; that strip lies
                // inside a single coarse slot. An O(1) min-check decides
                // whether anything actually migrates.
                let end = self.horizon_end();
                let slot = (((end - (1 << BUCKET_SHIFT)) >> L2_SHIFT) as usize) & (L2_BUCKETS - 1);
                self.drain_l2_slot(slot, end);
                if self.cursor_start & ((1 << L2_SHIFT) - 1) == 0 {
                    // Crossed a coarse-slot boundary: the coarse wheel's own
                    // horizon advanced, so far-future stragglers may now fit.
                    self.migrate_far();
                }
            }
        }
    }

    /// Minimum pending timestamp beyond the fine ring (coarse wheel + far
    /// heap). Only called on the rare ring-drained jump path.
    fn beyond_min(&self) -> Option<u64> {
        let l2_min = self.l2.iter().map(|s| s.min_at).min().unwrap_or(u64::MAX);
        let far_min = self.far.peek().map(|e| e.at).unwrap_or(u64::MAX);
        let min = l2_min.min(far_min);
        (min != u64::MAX).then_some(min)
    }

    /// Moves events of coarse slot `slot` with `at < before` into the fine
    /// ring. O(1) when the slot's minimum is not yet due.
    fn drain_l2_slot(&mut self, slot: usize, before: u64) {
        if self.l2[slot].min_at >= before {
            return;
        }
        let mut events = std::mem::take(&mut self.l2[slot].events);
        let mut min = u64::MAX;
        let mut i = 0;
        while i < events.len() {
            if events[i].at < before {
                let entry = events.swap_remove(i);
                debug_assert!(entry.at >= self.cursor_start);
                let delta = ((entry.at - self.cursor_start) >> BUCKET_SHIFT) as usize;
                let idx = (self.cursor + delta) & (NUM_BUCKETS - 1);
                self.buckets[idx].push(entry);
                self.l2_len -= 1;
                self.ring_len += 1;
            } else {
                min = min.min(events[i].at);
                i += 1;
            }
        }
        self.l2[slot].events = events;
        self.l2[slot].min_at = min;
    }

    /// Moves far-future events that now fall inside the coarse wheel's
    /// horizon into their slots.
    fn migrate_far(&mut self) {
        let end = self.l2_horizon_end();
        while let Some(head) = self.far.peek() {
            if head.at >= end {
                break;
            }
            let entry = self.far.pop().expect("peeked");
            let slot = &mut self.l2[((entry.at >> L2_SHIFT) as usize) & (L2_BUCKETS - 1)];
            slot.min_at = slot.min_at.min(entry.at);
            slot.events.push(entry);
            self.l2_len += 1;
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // The first non-empty bucket from the cursor holds the global
        // minimum (buckets partition time; overflow is beyond the horizon).
        for step in 0..NUM_BUCKETS {
            let idx = (self.cursor + step) & (NUM_BUCKETS - 1);
            let from = if step == 0 { self.pos } else { 0 };
            let bucket = &self.buckets[idx];
            if from < bucket.len() {
                let min = bucket[from..]
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("non-empty slice");
                return Some(SimTime::from_nanos(min));
            }
        }
        self.beyond_min().map(SimTime::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::LinkReady { hop: 0 });
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(20), Event::StatsTick);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, t(10));
        assert_eq!(q.pop().unwrap().0, t(20));
        assert_eq!(q.pop().unwrap().0, t(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 1,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 2,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 3,
            },
        );
        let gens: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::RtoTimer { generation, .. } => generation,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(gens, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(10) + SimDuration::from_millis(5), Event::StatsTick);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        assert_eq!(q.peek_time(), Some(t(15)));
        q.pop();
        assert_eq!(q.now(), t(15));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                // Lots of identical timestamps to stress tie-breaking.
                q.schedule(
                    t(i % 7),
                    Event::RtoTimer {
                        flow: 0,
                        generation: i,
                    },
                );
            }
            let mut order = Vec::new();
            while let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
                order.push((at, generation));
            }
            order
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn matches_reference_order_under_interleaved_load() {
        // Exhaustive cross-check against a sorted reference: random-ish
        // schedule times (including far beyond the ring horizon and repeats
        // of "now"), interleaved with pops, must produce the exact global
        // (at, seq) order the binary-heap implementation guaranteed.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        let advance = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            *x
        };
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..2_000u64 {
            // Schedule 0..3 events at pseudo-random offsets from now, some
            // at now exactly, some dozens of seconds out (overflow).
            for _ in 0..(advance(&mut x) % 4) {
                let r = advance(&mut x);
                let offset_ns = match r % 5 {
                    0 => 0,
                    1 => r % 1_000,                          // sub-microsecond
                    2 => r % 5_000_000,                      // sub-bucket range
                    3 => r % 1_000_000_000,                  // within horizon
                    _ => 5_000_000_000 + r % 30_000_000_000, // beyond horizon
                };
                let at = q.now() + SimDuration::from_nanos(offset_ns);
                reference.push((at.as_nanos(), seq));
                q.schedule(
                    at,
                    Event::RtoTimer {
                        flow: 0,
                        generation: seq,
                    },
                );
                seq += 1;
            }
            if round % 2 == 0 {
                if let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
                    popped.push((at.as_nanos(), generation));
                }
            }
        }
        while let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
            popped.push((at.as_nanos(), generation));
        }
        // Interleaving pops with schedules only ever removes the current
        // minimum, so the concatenated pop order must equal the fully
        // sorted reference.
        reference.sort_unstable();
        assert_eq!(popped.len(), reference.len());
        assert_eq!(popped, reference);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Way beyond the ring horizon (~4.3 s): must park in overflow and
        // still pop in order.
        q.schedule(SimTime::from_secs_f64(100.0), Event::StatsTick);
        q.schedule(SimTime::from_secs_f64(50.0), Event::LinkReady { hop: 0 });
        q.schedule(t(1), Event::FlowStart { flow: 0 });
        assert_eq!(q.pop().unwrap().0, t(1));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs_f64(50.0));
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs_f64(100.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn events_beyond_the_coarse_wheel_still_pop_in_order() {
        // The coarse wheel reaches ~4.6 minutes; these land in the far heap
        // and must migrate down through both levels in exact (at, seq) order.
        let mut q = EventQueue::new();
        let far = [1000.0, 999.0, 280.0, 275.0];
        for (i, secs) in far.iter().enumerate() {
            q.schedule(
                SimTime::from_secs_f64(*secs),
                Event::RtoTimer {
                    flow: i as u32,
                    generation: 0,
                },
            );
        }
        q.schedule(t(1), Event::FlowStart { flow: 9 });
        let mut times = Vec::new();
        while let Some((at, _)) = q.pop() {
            times.push(at);
        }
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        assert_eq!(times.len(), far.len() + 1);
        // Ties across the two levels keep insertion order.
        let mut q = EventQueue::new();
        let at = SimTime::from_secs_f64(300.0);
        q.schedule(
            at,
            Event::RtoTimer {
                flow: 0,
                generation: 1,
            },
        );
        q.schedule(
            at,
            Event::RtoTimer {
                flow: 0,
                generation: 2,
            },
        );
        let gens: Vec<u64> = (0..2)
            .map(|_| match q.pop().unwrap().1 {
                Event::RtoTimer { generation, .. } => generation,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(gens, vec![1, 2]);
    }

    #[test]
    fn reset_recycles_the_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Event::StatsTick);
        q.schedule(SimTime::from_secs_f64(60.0), Event::LinkReady { hop: 0 });
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        // Sequence numbers restart, so tie-breaking behaves like a fresh queue.
        q.schedule(t(5), Event::StatsTick);
        q.schedule(t(5), Event::LinkReady { hop: 0 });
        assert!(matches!(q.pop(), Some((_, Event::StatsTick))));
        assert!(matches!(q.pop(), Some((_, Event::LinkReady { hop: 0 }))));
    }
}
