//! Discrete-event calendar.
//!
//! A binary-heap based future event list with **stable, deterministic
//! ordering**: events scheduled for the same instant fire in the order they
//! were scheduled. Determinism here is essential — the genetic algorithm
//! assumes that re-evaluating the same trace yields exactly the same score
//! (§3.6 of the paper).

use crate::packet::{AckPacket, DataPacket};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event in the simulation.
///
/// Per-flow events carry the index of the CCA flow they belong to, so that
/// N concurrent congestion-controlled senders can share one event calendar.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A CCA flow starts sending.
    FlowStart {
        /// Index of the flow that starts.
        flow: u32,
    },
    /// A data packet arrives at the gateway queue (from any source).
    GatewayArrival(DataPacket),
    /// The bottleneck link finishes serializing / reaches a transmission
    /// opportunity and can pull the next packet from the queue.
    LinkReady,
    /// A data packet, having crossed the bottleneck, arrives at the sink.
    SinkArrival(DataPacket),
    /// An ACK arrives back at a CCA sender.
    AckArrival {
        /// Index of the flow the ACK belongs to.
        flow: u32,
        /// The acknowledgement itself.
        ack: AckPacket,
    },
    /// A sender's retransmission timer fires (armed for this sequence and
    /// this particular arming generation, to invalidate stale timers).
    RtoTimer {
        /// Index of the flow whose timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A receiver's delayed-ACK timer fires.
    DelayedAckTimer {
        /// Index of the flow whose receiver timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// A sender's pacing timer fires (used by paced CCAs such as BBR).
    PacingTimer {
        /// Index of the flow whose pacing timer fires.
        flow: u32,
        /// Timer generation; only the latest armed generation is valid.
        generation: u64,
    },
    /// Periodic statistics sampling tick.
    StatsTick,
}

struct ScheduledEvent {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future event list.
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    now: SimTime,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty event queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the simulator; in release
    /// builds the event is clamped to "now" to keep time monotone.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        debug_assert!(
            at >= self.now,
            "scheduling event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(ScheduledEvent {
            at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pops the next event, advancing the simulation clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::LinkReady);
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(20), Event::StatsTick);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().0, t(10));
        assert_eq!(q.pop().unwrap().0, t(20));
        assert_eq!(q.pop().unwrap().0, t(30));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 1,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 2,
            },
        );
        q.schedule(
            t(5),
            Event::RtoTimer {
                flow: 0,
                generation: 3,
            },
        );
        let gens: Vec<u64> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::RtoTimer { generation, .. } => generation,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(gens, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(10), Event::FlowStart { flow: 0 });
        q.schedule(t(10) + SimDuration::from_millis(5), Event::StatsTick);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        assert_eq!(q.peek_time(), Some(t(15)));
        q.pop();
        assert_eq!(q.now(), t(15));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let build = || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                // Lots of identical timestamps to stress tie-breaking.
                q.schedule(
                    t(i % 7),
                    Event::RtoTimer {
                        flow: 0,
                        generation: i,
                    },
                );
            }
            let mut order = Vec::new();
            while let Some((at, Event::RtoTimer { generation, .. })) = q.pop() {
                order.push((at, generation));
            }
            order
        };
        assert_eq!(build(), build());
    }
}
