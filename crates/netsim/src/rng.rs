//! Deterministic pseudo-random number generation.
//!
//! The genetic algorithm and the trace generator need randomness that is
//! (a) fast, (b) reproducible from a single `u64` seed across platforms and
//! library versions, and (c) cheaply forkable so that independent islands and
//! parallel evaluations never contend on shared state. We implement
//! xoshiro256** (public domain, Blackman & Vigna) with a splitmix64 seeder.

use serde::{Deserialize, Serialize};

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero outputs, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    /// Derives an independent generator (e.g. one per island or per trace).
    ///
    /// The child stream is a deterministic function of the parent state and
    /// the provided `stream` index, and advancing the child never affects the
    /// parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24BAED4963EE407);
        SimRng::new(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        // Lemire's nearly-divisionless bounded sampling is overkill here;
        // 128-bit multiply-shift keeps bias < 2^-64 which is plenty.
        let x = self.next_u64();
        lo + (((x as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform integer in `[lo, hi)` for `usize` ranges.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform float in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard normal sample (Box–Muller), used for Gaussian trace annealing.
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (std::f64::consts::TAU * u2).cos()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a random index according to the given non-negative weights.
    ///
    /// Returns `None` if the weights are empty or all zero/negative.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_range_f64(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if target < *w {
                    return Some(i);
                }
                target -= *w;
            }
        }
        // Floating point accumulation may walk off the end; return the last
        // positive-weight index.
        weights.iter().rposition(|w| *w > 0.0 && w.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "two seeds should produce mostly different streams"
        );
    }

    #[test]
    fn fork_is_independent() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let mut c1_again = parent.fork(0);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
        }
        assert_eq!(rng.gen_range_u64(5, 5), 5);
        assert_eq!(rng.gen_range_f64(2.0, 1.0), 2.0);
    }

    #[test]
    fn uniformity_coarse() {
        let mut rng = SimRng::new(1234);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[(rng.next_f64() * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(77);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn weighted_pick_prefers_heavy() {
        let mut rng = SimRng::new(5);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
        assert_eq!(rng.pick_weighted(&[]), None);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should change order"
        );
    }
}
