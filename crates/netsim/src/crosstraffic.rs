//! Cross-traffic source.
//!
//! The cross-traffic source is unresponsive (UDP-like): it injects one
//! packet into the gateway queue at each timestamp of its
//! [`TrafficTrace`](crate::trace::TrafficTrace), regardless of losses or
//! queueing. This matches the paper's traffic-fuzzing model (§3.3), where the
//! *pattern* of injections is the genome being evolved.

use crate::packet::DataPacket;
use crate::time::SimTime;
use crate::trace::TrafficTrace;

/// Iterates over a traffic trace, producing cross-traffic packets in order.
#[derive(Clone, Debug)]
pub struct CrossTrafficSource {
    injections: Vec<SimTime>,
    next: usize,
    packet_size: u32,
}

impl CrossTrafficSource {
    /// Creates a source from a trace and a fixed packet size.
    pub fn new(trace: &TrafficTrace, packet_size: u32) -> Self {
        CrossTrafficSource {
            injections: trace.injections().to_vec(),
            next: 0,
            packet_size,
        }
    }

    /// The time of the next injection, if any packets remain.
    pub fn next_injection_time(&self) -> Option<SimTime> {
        self.injections.get(self.next).copied()
    }

    /// Produces the next packet if it is due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> Option<DataPacket> {
        match self.injections.get(self.next) {
            Some(&t) if t <= now => {
                let pkt = DataPacket::cross_traffic(self.next as u64, self.packet_size, t);
                self.next += 1;
                Some(pkt)
            }
            _ => None,
        }
    }

    /// Number of packets injected so far.
    pub fn injected(&self) -> u64 {
        self.next as u64
    }

    /// Total packets the trace will inject.
    pub fn total(&self) -> u64 {
        self.injections.len() as u64
    }

    /// `true` when every packet has been injected.
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.injections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn injects_in_order_at_or_after_timestamps() {
        let trace = TrafficTrace::new(
            vec![
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(20),
            ],
            SimDuration::from_millis(100),
        );
        let mut src = CrossTrafficSource::new(&trace, 1200);
        assert_eq!(src.total(), 3);
        assert_eq!(src.next_injection_time(), Some(SimTime::from_millis(10)));
        assert!(src.poll(SimTime::from_millis(5)).is_none());
        let p = src.poll(SimTime::from_millis(10)).unwrap();
        assert_eq!(p.seq, 0);
        assert_eq!(p.size, 1200);
        // Two packets due at 20ms; they come out one poll at a time.
        let p1 = src.poll(SimTime::from_millis(20)).unwrap();
        let p2 = src.poll(SimTime::from_millis(20)).unwrap();
        assert_eq!((p1.seq, p2.seq), (1, 2));
        assert!(src.poll(SimTime::from_millis(30)).is_none());
        assert!(src.is_exhausted());
        assert_eq!(src.injected(), 3);
    }

    #[test]
    fn empty_trace_is_immediately_exhausted() {
        let trace = TrafficTrace::empty(SimDuration::from_secs(1));
        let mut src = CrossTrafficSource::new(&trace, 1448);
        assert!(src.is_exhausted());
        assert_eq!(src.next_injection_time(), None);
        assert!(src.poll(SimTime::from_secs_f64(0.5)).is_none());
        assert_eq!(src.injected(), 0);
        assert_eq!(src.total(), 0);
    }

    #[test]
    fn single_entry_trace_injects_exactly_once() {
        let at = SimTime::from_millis(37);
        let trace = TrafficTrace::new(vec![at], SimDuration::from_millis(100));
        let mut src = CrossTrafficSource::new(&trace, 900);
        assert_eq!(src.total(), 1);
        assert!(!src.is_exhausted());
        assert_eq!(src.next_injection_time(), Some(at));
        // Not due yet.
        assert!(src.poll(at - SimDuration::from_nanos(1)).is_none());
        // Due exactly at its timestamp; stamped with it, not with `now`.
        let pkt = src.poll(SimTime::from_millis(90)).unwrap();
        assert_eq!(pkt.seq, 0);
        assert_eq!(pkt.size, 900);
        assert_eq!(pkt.sent_at, at);
        // Never again.
        assert!(src.poll(SimTime::from_millis(99)).is_none());
        assert!(src.is_exhausted());
        assert_eq!(src.injected(), 1);
        assert_eq!(src.next_injection_time(), None);
    }

    #[test]
    fn back_to_back_burst_at_one_timestamp_drains_in_seq_order() {
        // Five packets at the same instant (the burst pattern the traffic
        // genome's mutation operators love to produce): one poll each, in
        // sequence order, all stamped with the shared timestamp.
        let at = SimTime::from_millis(10);
        let trace = TrafficTrace::new(vec![at; 5], SimDuration::from_millis(50));
        let mut src = CrossTrafficSource::new(&trace, 1448);
        assert_eq!(src.next_injection_time(), Some(at));
        for expected_seq in 0..5 {
            let pkt = src.poll(at).expect("burst packet due");
            assert_eq!(pkt.seq, expected_seq);
            assert_eq!(pkt.sent_at, at);
        }
        assert!(src.poll(at).is_none(), "burst fully drained");
        assert!(src.is_exhausted());
        assert_eq!(src.injected(), 5);
    }

    #[test]
    fn injection_at_time_zero_is_due_immediately() {
        let trace = TrafficTrace::new(vec![SimTime::ZERO], SimDuration::from_millis(10));
        let mut src = CrossTrafficSource::new(&trace, 1448);
        assert_eq!(src.next_injection_time(), Some(SimTime::ZERO));
        assert!(src.poll(SimTime::ZERO).is_some());
        assert!(src.is_exhausted());
    }
}
