//! Campaign-level telemetry: the hunt's metric registry, the periodic
//! progress [`Snapshot`] stream (JSONL) and the human status line.
//!
//! A [`HuntTelemetry`] is shared by reference between the campaign driver
//! and the GA worker threads: all recording goes through lock-free
//! [`metrics`](crate::metrics) primitives, and the only lock (around the
//! JSONL sink) is taken once per generation by whichever thread emits the
//! snapshot.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::profile::PhaseProfiler;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Snapshot schema version, bumped on breaking field changes.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// How often each GA operator produced an individual.
#[derive(Debug, Default)]
pub struct OperatorCounters {
    /// Individuals carried over unchanged as elites.
    pub elite: Counter,
    /// Individuals bred by crossover.
    pub crossover: Counter,
    /// Individuals produced by mutation.
    pub mutation: Counter,
    /// Mutations routed through the annealing schedule.
    pub anneal: Counter,
    /// Individuals copied between islands by migration.
    pub migrant: Counter,
}

/// The campaign's metric registry: fixed, named, lock-free slots covering
/// everything a hunt records. Recording costs a relaxed atomic op; reads
/// happen only when a snapshot is taken.
#[derive(Debug, Default)]
pub struct CampaignMetrics {
    /// Fitness evaluations completed.
    pub evaluations: Counter,
    /// Best score seen so far (gauge; last write wins).
    pub best_score: Gauge,
    /// Wall-clock nanoseconds per fitness evaluation (sharded per worker,
    /// merged after each evaluation batch).
    pub eval_latency_ns: Histogram,
    /// Per-operator production counts.
    pub operators: OperatorCounters,
    /// Findings accepted by the corpus (new or replacing weaker ones).
    pub corpus_inserted: Counter,
    /// Findings rejected as duplicates or by bucket top-K retention.
    pub corpus_deduplicated: Counter,
    /// Campaign checkpoints written to disk.
    pub checkpoints_written: Counter,
    /// Total bytes of checkpoint payload persisted.
    pub checkpoint_bytes: Counter,
    /// Evaluation panics caught and isolated by the fuzzer workers.
    pub panics_caught: Counter,
    /// Finding files quarantined or swept by corpus startup recovery.
    pub recovered_files: Counter,
}

impl CampaignMetrics {
    /// Re-seeds the cumulative counters from a resumed campaign's
    /// checkpoint so post-resume telemetry continues the original
    /// campaign's totals instead of restarting from zero.
    pub fn restore_counts(
        &self,
        evaluations: u64,
        operators: &OperatorSnapshot,
        panics_caught: u64,
        corpus_inserted: u64,
        corpus_deduplicated: u64,
    ) {
        self.evaluations.add(evaluations);
        self.operators.elite.add(operators.elite);
        self.operators.crossover.add(operators.crossover);
        self.operators.mutation.add(operators.mutation);
        self.operators.anneal.add(operators.anneal);
        self.operators.migrant.add(operators.migrant);
        self.panics_caught.add(panics_caught);
        self.corpus_inserted.add(corpus_inserted);
        self.corpus_deduplicated.add(corpus_deduplicated);
    }

    /// The operator counters as a plain snapshot (used when embedding
    /// telemetry totals in a checkpoint).
    pub fn operator_snapshot(&self) -> OperatorSnapshot {
        OperatorSnapshot {
            elite: self.operators.elite.get(),
            crossover: self.operators.crossover.get(),
            mutation: self.operators.mutation.get(),
            anneal: self.operators.anneal.get(),
            migrant: self.operators.migrant.get(),
        }
    }
}

/// Per-operator counts as carried by a [`Snapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OperatorSnapshot {
    /// Elites carried over.
    pub elite: u64,
    /// Crossover offspring.
    pub crossover: u64,
    /// Mutated offspring.
    pub mutation: u64,
    /// Annealed mutations.
    pub anneal: u64,
    /// Migrated individuals.
    pub migrant: u64,
}

/// Eval-latency percentiles in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// One periodic progress record, emitted per generation as a JSONL line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA`]).
    pub schema: u32,
    /// Generation index (0-based).
    pub generation: u32,
    /// Total fitness evaluations so far.
    pub evaluations: u64,
    /// Wall-clock seconds since the hunt started.
    pub elapsed_secs: f64,
    /// Evaluations per wall-clock second so far.
    pub evals_per_sec: f64,
    /// Best score across all islands so far.
    pub best_score: f64,
    /// Mean score of the current population.
    pub mean_score: f64,
    /// Best score per island this generation (the plateau trajectory).
    pub island_best: Vec<f64>,
    /// Operator hit counts so far.
    pub operators: OperatorSnapshot,
    /// Eval-latency percentiles so far.
    pub eval_latency_ns: LatencyQuantiles,
}

/// The live observability bundle for one hunt: metrics + profiler + the
/// optional JSONL sink and stderr status line.
pub struct HuntTelemetry {
    /// The metric registry; workers record into this directly.
    pub metrics: CampaignMetrics,
    /// Wall-time breakdown of the campaign loop.
    pub profiler: PhaseProfiler,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
    status: bool,
    started: Instant,
}

impl Default for HuntTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl HuntTelemetry {
    /// Telemetry with no sink and no status line: pure in-memory metrics.
    pub fn new() -> Self {
        HuntTelemetry {
            metrics: CampaignMetrics::default(),
            profiler: PhaseProfiler::new(),
            sink: Mutex::new(None),
            status: false,
            started: Instant::now(),
        }
    }

    /// Streams one JSONL [`Snapshot`] per generation into `sink`.
    pub fn with_sink(self, sink: Box<dyn Write + Send>) -> Self {
        HuntTelemetry {
            sink: Mutex::new(Some(sink)),
            ..self
        }
    }

    /// Prints a one-line progress summary to stderr per generation.
    pub fn with_status_line(mut self) -> Self {
        self.status = true;
        self
    }

    /// Builds the current [`Snapshot`] for a finished generation.
    pub fn snapshot(
        &self,
        generation: u32,
        best_score: f64,
        mean_score: f64,
        island_best: Vec<f64>,
    ) -> Snapshot {
        let evaluations = self.metrics.evaluations.get();
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        let latency = self.metrics.eval_latency_ns.snapshot();
        Snapshot {
            schema: SNAPSHOT_SCHEMA,
            generation,
            evaluations,
            elapsed_secs,
            evals_per_sec: evaluations as f64 / elapsed_secs.max(1e-9),
            best_score,
            mean_score,
            island_best,
            operators: self.metrics.operator_snapshot(),
            eval_latency_ns: LatencyQuantiles {
                p50_ns: latency.percentile(50.0),
                p95_ns: latency.percentile(95.0),
                p99_ns: latency.percentile(99.0),
            },
        }
    }

    /// Records a finished generation: updates the best-score gauge, appends
    /// a JSONL snapshot to the sink (if any) and prints the status line (if
    /// enabled). Sink write errors are swallowed — telemetry must never
    /// abort a hunt.
    pub fn observe_generation(
        &self,
        generation: u32,
        best_score: f64,
        mean_score: f64,
        island_best: Vec<f64>,
    ) {
        self.metrics.best_score.set(best_score);
        let snap = self.snapshot(generation, best_score, mean_score, island_best);
        if let Ok(mut guard) = self.sink.lock() {
            if let Some(sink) = guard.as_mut() {
                let line = serde_json::to_string(&snap).expect("snapshot serializes");
                let _ = writeln!(sink, "{line}");
                let _ = sink.flush();
            }
        }
        if self.status {
            eprintln!(
                "[gen {:>3}] best {:.4} mean {:.4} | {} evals, {:.1}/s | eval p50/p95/p99 {:.2}/{:.2}/{:.2} ms",
                snap.generation,
                snap.best_score,
                snap.mean_score,
                snap.evaluations,
                snap.evals_per_sec,
                snap.eval_latency_ns.p50_ns as f64 / 1e6,
                snap.eval_latency_ns.p95_ns as f64 / 1e6,
                snap.eval_latency_ns.p99_ns as f64 / 1e6,
            );
        }
    }

    /// The profiler's wall-time breakdown (printed at campaign end).
    pub fn phase_report(&self) -> String {
        self.profiler.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write sink backed by a shared Vec, for asserting on JSONL output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn snapshots_round_trip_and_stream_as_jsonl() {
        let buf = SharedBuf::default();
        let telemetry = HuntTelemetry::new().with_sink(Box::new(buf.clone()));
        telemetry.metrics.evaluations.add(12);
        telemetry.metrics.eval_latency_ns.record(1_000_000);
        telemetry.metrics.operators.mutation.add(5);
        telemetry.observe_generation(0, 0.75, 0.40, vec![0.75, 0.60]);
        telemetry.observe_generation(1, 0.80, 0.55, vec![0.80, 0.61]);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Snapshot = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.schema, SNAPSHOT_SCHEMA);
        assert_eq!(first.generation, 0);
        assert_eq!(first.evaluations, 12);
        assert_eq!(first.best_score, 0.75);
        assert_eq!(first.island_best, vec![0.75, 0.60]);
        assert_eq!(first.operators.mutation, 5);
        assert!(first.eval_latency_ns.p50_ns > 0);
        let second: Snapshot = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.generation, 1);
        assert_eq!(telemetry.metrics.best_score.get(), 0.80);
    }

    #[test]
    fn metrics_only_telemetry_needs_no_sink() {
        let telemetry = HuntTelemetry::new();
        telemetry.metrics.evaluations.inc();
        telemetry.observe_generation(0, 1.0, 1.0, vec![1.0]);
        let snap = telemetry.snapshot(0, 1.0, 1.0, vec![1.0]);
        assert_eq!(snap.evaluations, 1);
        assert!(snap.evals_per_sec > 0.0);
    }
}
