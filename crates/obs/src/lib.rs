//! # ccfuzz-obs
//!
//! Observability primitives for the cc-fuzz workspace, kept dependency-light
//! (only the vendored serde shims) so every layer — the simulator, the GA
//! core, the corpus driver and the bench harness — can record into it:
//!
//! * [`fleet`] — worker-tagged counter lanes for distributed hunts
//!   (per-worker evaluations, panics, restarts, migrant routing).
//! * [`metrics`] — lock-free counters, gauges and 256-bucket log-scale
//!   histograms with per-worker [`LocalHistogram`] shards that merge into
//!   the shared [`Histogram`] on snapshot.
//! * [`persist`] — crash-safe [`write_atomic`] (write-temp + fsync +
//!   rename) shared by the corpus store, campaign checkpoints and the
//!   bench reporter.
//! * [`profile`] — a scoped wall-clock [`PhaseProfiler`] for the campaign
//!   loop's generate / evaluate / select / mutate / corpus-io phases.
//! * [`ring`] — the fixed-capacity [`RingBuffer`] backing the simulator's
//!   structured trace recorder.
//! * [`telemetry`] — the per-hunt [`HuntTelemetry`] bundle: the metric
//!   registry, the JSONL [`Snapshot`] progress stream and the stderr
//!   status line.
//!
//! Design rule: recording must be safe to leave enabled in the hot path
//! (relaxed atomics, no locks, no allocation), and anything heavier —
//! percentile walks, serialization, I/O — happens only at snapshot time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod metrics;
pub mod persist;
pub mod profile;
pub mod ring;
pub mod telemetry;

pub use fleet::{FleetTelemetry, WorkerLane, WorkerLaneSnapshot};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LocalHistogram};
pub use persist::write_atomic;
pub use profile::{Phase, PhaseProfiler};
pub use ring::RingBuffer;
pub use telemetry::{CampaignMetrics, HuntTelemetry, LatencyQuantiles, OperatorSnapshot, Snapshot};
