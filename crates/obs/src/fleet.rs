//! Worker-tagged telemetry for distributed campaigns.
//!
//! A multi-process hunt shards its islands across worker processes; the
//! coordinator records per-worker activity into a [`FleetTelemetry`] so the
//! daemon's status endpoint can show where the work (and the churn —
//! restarts, panics) is happening. Like the rest of this crate, recording
//! is lock-free counter bumps; serialization happens only at snapshot time.

use crate::metrics::Counter;
use serde::{Deserialize, Serialize};

/// Lock-free per-worker counters.
#[derive(Debug, Default)]
pub struct WorkerLane {
    /// Simulations this worker's islands have run.
    pub evaluations: Counter,
    /// Evaluation panics caught inside this worker.
    pub panics: Counter,
    /// Times this worker's process was respawned by the supervisor.
    pub restarts: Counter,
    /// Migrants routed *out of* this worker's islands.
    pub migrants_out: Counter,
}

impl WorkerLane {
    fn snapshot(&self, worker: usize) -> WorkerLaneSnapshot {
        WorkerLaneSnapshot {
            worker,
            evaluations: self.evaluations.get(),
            panics: self.panics.get(),
            restarts: self.restarts.get(),
            migrants_out: self.migrants_out.get(),
        }
    }
}

/// Point-in-time copy of one worker's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerLaneSnapshot {
    /// Worker index (0-based, stable across restarts).
    pub worker: usize,
    /// Simulations this worker's islands have run.
    pub evaluations: u64,
    /// Evaluation panics caught inside this worker.
    pub panics: u64,
    /// Times this worker's process was respawned.
    pub restarts: u64,
    /// Migrants routed out of this worker's islands.
    pub migrants_out: u64,
}

/// Fleet-wide, worker-tagged counters for one distributed hunt.
#[derive(Debug)]
pub struct FleetTelemetry {
    lanes: Vec<WorkerLane>,
}

impl FleetTelemetry {
    /// A fleet of `n_workers` zeroed lanes.
    pub fn new(n_workers: usize) -> Self {
        FleetTelemetry {
            lanes: (0..n_workers).map(|_| WorkerLane::default()).collect(),
        }
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.lanes.len()
    }

    /// The counters of worker `w`. Panics if `w` is out of range.
    pub fn lane(&self, w: usize) -> &WorkerLane {
        &self.lanes[w]
    }

    /// Point-in-time copy of every lane, in worker order.
    pub fn snapshot(&self) -> Vec<WorkerLaneSnapshot> {
        self.lanes
            .iter()
            .enumerate()
            .map(|(w, lane)| lane.snapshot(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_record_independently_and_snapshot_in_order() {
        let fleet = FleetTelemetry::new(3);
        fleet.lane(0).evaluations.add(10);
        fleet.lane(1).panics.add(2);
        fleet.lane(2).restarts.add(1);
        fleet.lane(2).migrants_out.add(7);
        let snap = fleet.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].worker, 0);
        assert_eq!(snap[0].evaluations, 10);
        assert_eq!(snap[1].panics, 2);
        assert_eq!(snap[2].restarts, 1);
        assert_eq!(snap[2].migrants_out, 7);
        assert_eq!(snap[0].panics, 0);
    }

    #[test]
    fn lane_snapshot_roundtrips_through_json() {
        let fleet = FleetTelemetry::new(1);
        fleet.lane(0).evaluations.add(42);
        let snap = fleet.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Vec<WorkerLaneSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
