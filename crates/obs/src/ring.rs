//! A fixed-capacity ring buffer that overwrites its oldest entries.
//!
//! Used by the simulator's trace recorder: a bounded buffer means tracing
//! can stay on for arbitrarily long runs without unbounded growth, and the
//! overwrite counter tells the reader exactly how much history was shed.

/// Fixed-capacity FIFO that overwrites the oldest element when full.
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    overwritten: u64,
}

impl<T> RingBuffer<T> {
    /// An empty ring holding at most `capacity` elements.
    ///
    /// A zero capacity is rounded up to 1 so `push` never divides by zero.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// Appends an element, evicting the oldest one when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been pushed (or everything evicted — which
    /// cannot happen, eviction replaces).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many elements were evicted to make room.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates from oldest to newest retained element.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Consumes the ring, returning elements from oldest to newest.
    pub fn into_vec(mut self) -> Vec<T> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = RingBuffer::new(3);
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.overwritten(), 0);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        ring.push(3);
        ring.push(4);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overwritten(), 2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = RingBuffer::new(0);
        ring.push(7);
        ring.push(8);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.into_vec(), vec![8]);
    }

    #[test]
    fn order_preserved_across_many_wraps() {
        let mut ring = RingBuffer::new(5);
        for i in 0..102 {
            ring.push(i);
        }
        assert_eq!(ring.overwritten(), 97);
        assert_eq!(ring.into_vec(), vec![97, 98, 99, 100, 101]);
    }
}
