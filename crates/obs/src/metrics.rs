//! Lock-free metric primitives: counters, gauges and log-bucketed
//! histograms with per-worker shards.
//!
//! Everything here is built for the campaign hot path: recording is a
//! handful of relaxed atomic operations (or plain integer arithmetic for
//! the thread-local [`LocalHistogram`] shards), and aggregation happens
//! only when a snapshot is taken. None of the types allocate after
//! construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Values `0..EXACT_LIMIT` get one bucket
/// each; everything above is bucketed at 4 sub-buckets per octave, which
/// spans the full `u64` range with a relative error below 25 %.
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Values below this threshold are counted exactly (one bucket per value).
const EXACT_LIMIT: u64 = 16;

/// Maps a value to its histogram bucket index.
///
/// `0..16` map to themselves; larger values map to
/// `16 + (exp - 4) * 4 + <top two mantissa bits>` where `exp` is the
/// position of the leading one bit. The largest `u64` lands in bucket 255.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < EXACT_LIMIT {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as u64; // >= 4
        let sub = (value >> (exp - 2)) & 0b11;
        (EXACT_LIMIT + (exp - 4) * 4 + sub) as usize
    }
}

/// The smallest value that maps to bucket `index` (the bucket's lower
/// bound; used as the representative value when reading percentiles).
pub fn bucket_floor(index: usize) -> u64 {
    if index < EXACT_LIMIT as usize {
        index as u64
    } else {
        let off = index as u64 - EXACT_LIMIT;
        let exp = 4 + off / 4;
        let sub = off % 4;
        (1u64 << exp) + sub * (1u64 << (exp - 2))
    }
}

/// A monotonically increasing counter (relaxed atomics; safe to hammer
/// from any number of threads).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins floating-point gauge (stored as `f64` bits in an
/// `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the stored value.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared log-bucketed histogram: 256 atomic buckets plus sum / count /
/// min / max, all updated with relaxed atomics. Workers either record
/// directly or batch into a [`LocalHistogram`] shard and merge once.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Folds a worker shard into this histogram (the merge half of
    /// record-locally / merge-on-snapshot).
    pub fn merge_local(&self, shard: &LocalHistogram) {
        if shard.count == 0 {
            return;
        }
        for (bucket, &n) in self.buckets.iter().zip(shard.buckets.iter()) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(shard.count, Ordering::Relaxed);
        self.sum.fetch_add(shard.sum, Ordering::Relaxed);
        self.min.fetch_min(shard.min, Ordering::Relaxed);
        self.max.fetch_max(shard.max, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (individual loads are
    /// relaxed; concurrent recording may skew a bucket by a few counts,
    /// which is fine for progress reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain, single-threaded histogram shard. One per worker; recording is
/// non-atomic, and the shard is merged into the shared [`Histogram`] when
/// the worker finishes its batch.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty shard.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: Box::new([0u64; HISTOGRAM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another shard into this one.
    pub fn merge_from(&mut self, other: &LocalHistogram) {
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The shard's state as a snapshot (for tests and direct readers).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: *self.buckets,
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// A point-in-time copy of a histogram, with percentile readers.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in `[0, 100]`): the rank-`ceil(p/100 *
    /// count)` value estimated by linear interpolation *within* the bucket
    /// that holds it (midpoint-rank convention), clamped to the observed
    /// min/max. Interpolation matters for reports: without it, two nearby
    /// quantiles that land in the same log bucket read back the identical
    /// bucket floor (the p95 == p99 degeneracy), whereas the interpolated
    /// estimates stay ordered. Exact below 16 (width-1 buckets interpolate
    /// to themselves); < 25 % relative error above. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        if target >= self.count {
            // The top rank is, by definition, the observed maximum.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen;
            seen += n;
            if seen >= target {
                let lo = bucket_floor(i);
                let hi = if i + 1 < HISTOGRAM_BUCKETS {
                    bucket_floor(i + 1)
                } else {
                    u64::MAX
                };
                // Rank position inside the bucket, at the midpoint of its
                // slot (so one value in a bucket estimates the bucket's
                // middle, and distinct ranks give distinct estimates).
                let pos = (target - before) as f64 - 0.5;
                let est = lo as f64 + (hi - lo) as f64 * (pos / n as f64);
                return (est as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0usize;
        for exp in 0..64 {
            let v = 1u64 << exp;
            for probe in [v, v + v / 3, v + v / 2, (v - 1).max(1)] {
                let b = bucket_index(probe);
                assert!(b < HISTOGRAM_BUCKETS);
                let _ = last;
                last = b;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // bucket_floor inverts bucket_index on bucket lower bounds.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 20, u64::MAX / 3] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor <= v);
            assert!(
                (v - floor) as f64 / v as f64 <= 0.25,
                "value {v} floor {floor}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_records_and_reads_percentiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        let p50 = s.percentile(50.0);
        assert!((40..=50).contains(&p50), "p50 {p50}");
        let p99 = s.percentile(99.0);
        assert!((96..=100).contains(&p99), "p99 {p99}");
        assert_eq!(s.percentile(100.0), 100);
        // Exact range: small values read back exactly.
        let h = Histogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.snapshot().percentile(50.0), 3);
        assert_eq!(h.snapshot().percentile(99.0), 7);
    }

    #[test]
    fn nearby_quantiles_in_one_bucket_stay_ordered() {
        // 100 latency-like values spread across ~1.0–2.1 ms land in a
        // handful of wide log buckets; the bucket-floor reader collapsed
        // p95 and p99 to the same number. Interpolation keeps them apart.
        let h = Histogram::new();
        for i in 0..100u64 {
            h.record(1_048_576 + i * 10_486);
        }
        let s = h.snapshot();
        let p50 = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        let p99 = s.percentile(99.0);
        assert!(p50 < p95, "p50 {p50} vs p95 {p95}");
        assert!(p95 < p99, "p95 {p95} vs p99 {p99}");
        // Estimates stay inside the observed range and near the truth
        // (bucket relative error bound).
        assert!((s.min..=s.max).contains(&p95));
        assert!((s.min..=s.max).contains(&p99));
        assert_eq!(s.percentile(100.0), s.max);
        // A constant distribution still reads back exactly (clamping).
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(42_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(95.0), 42_000_000);
        assert_eq!(s.percentile(99.0), 42_000_000);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn local_shard_merge_equals_direct_recording() {
        let direct = Histogram::new();
        let sharded = Histogram::new();
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        for v in 0..1000u64 {
            direct.record(v * v % 7919);
            if v % 2 == 0 {
                a.record(v * v % 7919);
            } else {
                b.record(v * v % 7919);
            }
        }
        sharded.merge_local(&a);
        sharded.merge_local(&b);
        assert_eq!(direct.snapshot(), sharded.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }
}
