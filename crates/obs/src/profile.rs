//! A scoped wall-clock profiler for the campaign loop's coarse phases.
//!
//! Each phase accumulates nanoseconds in an atomic slot; a [`PhaseScope`]
//! guard times a region and adds its elapsed time on drop. Overhead is two
//! `Instant` reads and one relaxed `fetch_add` per scope, so wrapping even
//! per-generation regions is harmless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The coarse phases of one fuzzing campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Seeding the initial population (genome generation).
    Generate,
    /// Fitness evaluation (simulations).
    Evaluate,
    /// Ranking islands and picking elites / parents.
    Select,
    /// Breeding: crossover, mutation, annealing, migration.
    Mutate,
    /// Persisting findings to the corpus.
    CorpusIo,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Generate,
        Phase::Evaluate,
        Phase::Select,
        Phase::Mutate,
        Phase::CorpusIo,
    ];

    /// Stable lower-case name (used in reports and telemetry).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Generate => "generate",
            Phase::Evaluate => "evaluate",
            Phase::Select => "select",
            Phase::Mutate => "mutate",
            Phase::CorpusIo => "corpus-io",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Generate => 0,
            Phase::Evaluate => 1,
            Phase::Select => 2,
            Phase::Mutate => 3,
            Phase::CorpusIo => 4,
        }
    }
}

/// Accumulated wall-clock time per [`Phase`].
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    nanos: [AtomicU64; 5],
}

impl PhaseProfiler {
    /// A profiler with all phases at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `phase`; the elapsed time is added when the returned
    /// guard drops.
    pub fn scope(&self, phase: Phase) -> PhaseScope<'_> {
        PhaseScope {
            profiler: self,
            phase,
            started: Instant::now(),
        }
    }

    /// Adds raw nanoseconds to a phase (for callers that time themselves).
    pub fn add_nanos(&self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds for one phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()].load(Ordering::Relaxed)
    }

    /// Accumulated seconds per phase, in reporting order.
    pub fn seconds(&self) -> Vec<(&'static str, f64)> {
        Phase::ALL
            .iter()
            .map(|&p| (p.name(), self.nanos(p) as f64 / 1e9))
            .collect()
    }

    /// Human-readable wall-time breakdown, e.g.
    /// `phase breakdown: evaluate 12.41s (93.1%) | mutate 0.52s (3.9%) | ...`.
    /// Phases that never ran are omitted; percentages are of the total
    /// profiled time, not of the campaign wall clock.
    pub fn report(&self) -> String {
        let secs = self.seconds();
        let total: f64 = secs.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return String::from("phase breakdown: (nothing profiled)");
        }
        let parts: Vec<String> = secs
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(name, s)| format!("{name} {s:.2}s ({:.1}%)", s / total * 100.0))
            .collect();
        format!("phase breakdown: {}", parts.join(" | "))
    }
}

/// Guard returned by [`PhaseProfiler::scope`].
pub struct PhaseScope<'a> {
    profiler: &'a PhaseProfiler,
    phase: Phase,
    started: Instant,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.profiler.add_nanos(self.phase, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_time() {
        let p = PhaseProfiler::new();
        {
            let _g = p.scope(Phase::Evaluate);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        {
            let _g = p.scope(Phase::Evaluate);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(p.nanos(Phase::Evaluate) >= 10_000_000);
        assert_eq!(p.nanos(Phase::Generate), 0);
    }

    #[test]
    fn report_names_only_active_phases() {
        let p = PhaseProfiler::new();
        p.add_nanos(Phase::Evaluate, 3_000_000_000);
        p.add_nanos(Phase::Mutate, 1_000_000_000);
        let report = p.report();
        assert!(report.contains("evaluate 3.00s (75.0%)"), "{report}");
        assert!(report.contains("mutate 1.00s (25.0%)"), "{report}");
        assert!(!report.contains("corpus-io"), "{report}");
    }

    #[test]
    fn empty_profiler_reports_nothing_profiled() {
        assert!(PhaseProfiler::new().report().contains("nothing profiled"));
    }
}
