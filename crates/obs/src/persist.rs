//! Crash-safe file persistence: write-temp + fsync + rename.
//!
//! Every durable artifact in the workspace — corpus findings, campaign
//! checkpoints, bench reports — goes through [`write_atomic`] so a crash
//! (or SIGKILL) at any instant leaves either the old file or the new file
//! on disk, never a truncated hybrid. The temp sibling always carries a
//! `.tmp` extension so recovery passes can sweep strays.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence number for staging-file names. A PID alone is not
/// enough: two threads of one process (e.g. two daemon campaigns) writing
/// the same target would share a staging file, and one truncating it while
/// the other renames can put a torn file in place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: write a `.tmp` sibling in the same
/// directory, fsync it, rename it over `path`, then best-effort fsync the
/// parent directory so the rename itself is durable. Returns the number of
/// bytes written.
///
/// The temp name embeds the writer's PID and a process-wide sequence number
/// (`<name>.<pid>.<seq>.tmp`) so neither two processes nor two threads of
/// one process racing on the same target ever share a staging file; last
/// rename wins, and either way `path` holds one complete write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<u64> {
    let tmp = tmp_sibling(path)?;
    let result = write_via_tmp(path, &tmp, bytes);
    if result.is_err() {
        // Never leave a stray staging file behind a failed write.
        let _ = std::fs::remove_file(&tmp);
    }
    result?;
    Ok(bytes.len() as u64)
}

fn write_via_tmp(path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp, path)?;
    // Durability of the rename needs the directory entry flushed too. Some
    // platforms refuse to open or fsync a directory; that only weakens
    // durability, not atomicity, so ignore failures.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

fn tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "cannot write atomically to {}: no file name",
                path.display()
            ),
        )
    })?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    Ok(path.with_file_name(tmp_name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp_files() {
        let dir = scratch_dir("basic");
        let path = dir.join("artifact.json");
        let written = write_atomic(&path, b"{\"ok\":true}\n").unwrap();
        assert_eq!(written, 12);
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\":true}\n");
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().map(|x| x == "tmp") == Some(true))
            .collect();
        assert!(strays.is_empty(), "staging file survived the rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrites_replace_the_whole_file() {
        let dir = scratch_dir("overwrite");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"a longer first version").unwrap();
        write_atomic(&path, b"short").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"short");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_in_one_process_never_publish_a_torn_file() {
        // Regression test: with a PID-only staging name, every thread below
        // shares one staging file, so a reader can observe a file that one
        // thread truncated mid-way through another thread's rename. Each
        // write is `{"writer":w,"payload":"ww...w"}` with a writer-specific
        // length, so any interleaving of two writers fails to parse.
        let dir = scratch_dir("threads");
        let path = dir.join("artifact.json");
        const WRITERS: usize = 8;
        const ROUNDS: usize = 50;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = &path;
                scope.spawn(move || {
                    let body = "w".repeat(16 + w * 3);
                    let doc = format!("{{\"writer\":{w},\"payload\":\"{body}\"}}");
                    for _ in 0..ROUNDS {
                        write_atomic(path, doc.as_bytes()).unwrap();
                        let seen = std::fs::read_to_string(path).unwrap();
                        assert!(
                            seen.starts_with("{\"writer\":") && seen.ends_with("\"}"),
                            "torn file observed: {seen:?}"
                        );
                    }
                });
            }
        });
        // Every staging file was either renamed or cleaned up.
        let strays = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().map(|x| x == "tmp") == Some(true))
            .count();
        assert_eq!(strays, 0, "staging files survived the hammering");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_an_error_without_panicking() {
        let dir = scratch_dir("missing");
        let path = dir.join("nope").join("artifact.json");
        assert!(write_atomic(&path, b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
