//! Crash-safe file persistence: write-temp + fsync + rename.
//!
//! Every durable artifact in the workspace — corpus findings, campaign
//! checkpoints, bench reports — goes through [`write_atomic`] so a crash
//! (or SIGKILL) at any instant leaves either the old file or the new file
//! on disk, never a truncated hybrid. The temp sibling always carries a
//! `.tmp` extension so recovery passes can sweep strays.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: write a `.tmp` sibling in the same
/// directory, fsync it, rename it over `path`, then best-effort fsync the
/// parent directory so the rename itself is durable. Returns the number of
/// bytes written.
///
/// The temp name embeds the writer's PID (`<name>.<pid>.tmp`) so two
/// processes racing on the same target never corrupt each other's staging
/// file; last rename wins, and either way `path` holds one complete write.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<u64> {
    let tmp = tmp_sibling(path)?;
    let result = write_via_tmp(path, &tmp, bytes);
    if result.is_err() {
        // Never leave a stray staging file behind a failed write.
        let _ = std::fs::remove_file(&tmp);
    }
    result?;
    Ok(bytes.len() as u64)
}

fn write_via_tmp(path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp, path)?;
    // Durability of the rename needs the directory entry flushed too. Some
    // platforms refuse to open or fsync a directory; that only weakens
    // durability, not atomicity, so ignore failures.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

fn tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "cannot write atomically to {}: no file name",
                path.display()
            ),
        )
    })?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    Ok(path.with_file_name(tmp_name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp_files() {
        let dir = scratch_dir("basic");
        let path = dir.join("artifact.json");
        let written = write_atomic(&path, b"{\"ok\":true}\n").unwrap();
        assert_eq!(written, 12);
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\":true}\n");
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().map(|x| x == "tmp") == Some(true))
            .collect();
        assert!(strays.is_empty(), "staging file survived the rename");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrites_replace_the_whole_file() {
        let dir = scratch_dir("overwrite");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"a longer first version").unwrap();
        write_atomic(&path, b"short").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"short");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_an_error_without_panicking() {
        let dir = scratch_dir("missing");
        let path = dir.join("nope").join("artifact.json");
        assert!(write_atomic(&path, b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
