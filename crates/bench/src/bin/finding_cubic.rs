//! §4.2 finding: the NS3 CUBIC slow-start window-update bug.
//!
//! Runs traffic fuzzing against the bug-compatible CUBIC, replays the best
//! trace against both the buggy and the fixed (Linux-like) CUBIC, and shows
//! the signature of the bug: after an RTO, a retransmission that fills a
//! large hole makes the buggy CUBIC blow its window far past ssthresh,
//! burst ~1 RTO of data and suffer catastrophic losses.

use ccfuzz_analysis::report::one_line_summary;
use ccfuzz_bench::{print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(23, 18, 40);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::CubicNs3Buggy, duration, ga);

    eprintln!(
        "running traffic fuzzing vs the NS3-buggy CUBIC ({:?} scale)...",
        scale
    );
    let result = campaign.run_traffic();

    // Replay the same trace against buggy and fixed CUBIC.
    let buggy_run = campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);
    let mut fixed_campaign = campaign.clone();
    fixed_campaign.cca = CcaKind::Cubic;
    let fixed_run = fixed_campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);

    print_table(
        "Best adversarial trace",
        &[
            (
                "cross-traffic packets",
                result.best_genome.timestamps.len().to_string(),
            ),
            ("fitness score", format!("{:.3}", result.best_outcome.score)),
        ],
    );
    print_table(
        "CUBIC with the NS3 slow-start bug",
        &[
            (
                "summary",
                one_line_summary(&buggy_run.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "queue drops (self-inflicted bursts)",
                buggy_run.stats.flow().queue_drops.to_string(),
            ),
            ("RTOs", buggy_run.stats.flow().rto_count.to_string()),
        ],
    );
    print_table(
        "CUBIC with the Linux-correct slow-start cap",
        &[
            (
                "summary",
                one_line_summary(&fixed_run.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "queue drops",
                fixed_run.stats.flow().queue_drops.to_string(),
            ),
            ("RTOs", fixed_run.stats.flow().rto_count.to_string()),
        ],
    );
    println!("\nExpected shape (paper): on the same trace the buggy CUBIC suffers far more");
    println!("self-inflicted losses (a burst of roughly one RTO's worth of data after each");
    println!("large cumulative-ACK jump), while the capped CUBIC recovers normally.");
}
