//! Parking-lot figure: per-flow and per-hop results of a topology-fuzzing
//! campaign.
//!
//! Runs the topology campaign preset (a 3-hop chain bracketing the paper's
//! 12 Mbps dumbbell, with parking-lot competitor flows), lets the GA evolve
//! the hop chain and flow paths toward maximal breakage, then replays the
//! best topology and prints:
//!
//! * the GA convergence curve (best multi-bottleneck score per generation),
//! * per-flow windowed-throughput curves of the worst topology found,
//! * per-hop queue-occupancy curves (the cascade the objective rewards),
//! * a per-hop chain table and a per-flow results table.
//!
//! `--paper-scale` runs the full-size GA; the default quick scale finishes
//! in well under a minute.

use ccfuzz_analysis::figures::FigureSeries;
use ccfuzz_analysis::table::per_flow_table;
use ccfuzz_analysis::timeseries::windowed_throughput_bps;
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::Campaign;
use ccfuzz_core::scoring::fairness_breakdown;
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(31, 8, 40);
    let campaign = Campaign::paper_topology(CcaKind::Reno, 3, duration, ga);
    let result = campaign.run_topology();

    // Convergence of the multi-bottleneck objective.
    let convergence = FigureSeries::new(
        "best multi-bottleneck score",
        result
            .history
            .iter()
            .map(|h| (h.generation as f64, h.best_score))
            .collect(),
    );
    print_figure(
        "Topology fuzzing: best score per generation (Reno over an evolved hop chain)",
        &[&convergence],
    );

    // Replay the worst topology with full recording.
    let evaluator = campaign.evaluator();
    let best = &result.best_genome;
    let replay = evaluator.simulate_topology(best, true);
    let mss = campaign.sim.mss;
    let window = SimDuration::from_millis(250);
    let series: Vec<FigureSeries> = replay
        .stats
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let points = windowed_throughput_bps(&f.delivery_times, mss, window, duration)
                .into_iter()
                .map(|(t, bps)| (t.as_secs_f64(), bps / 1e6))
                .collect();
            FigureSeries::new(
                format!(
                    "flow {i} ({}, hops {}..={})",
                    best.flows[i].flow.cca.name(),
                    best.flows[i].path.entry,
                    best.flows[i].path.exit
                ),
                points,
            )
        })
        .collect();
    let refs: Vec<&FigureSeries> = series.iter().collect();
    print_figure(
        "Worst topology found: per-flow throughput (Mbps vs seconds)",
        &refs,
    );

    // Per-hop occupancy: the cascade of standing queues. Single-hop
    // minimized chains keep everything in the aggregate samples.
    let hop_series: Vec<FigureSeries> = if replay.stats.hop_samples.is_empty() {
        vec![FigureSeries::new(
            "hop 0 (packets)",
            replay
                .stats
                .queue_samples
                .iter()
                .map(|(t, len, _)| (t.as_secs_f64(), *len as f64))
                .collect(),
        )]
    } else {
        replay
            .stats
            .hop_samples
            .iter()
            .enumerate()
            .map(|(k, samples)| {
                FigureSeries::new(
                    format!("hop {k} (packets)"),
                    samples
                        .iter()
                        .map(|(t, len, _)| (t.as_secs_f64(), *len as f64))
                        .collect(),
                )
            })
            .collect()
    };
    let hop_refs: Vec<&FigureSeries> = hop_series.iter().collect();
    print_figure(
        "Worst topology found: per-hop queue occupancy (packets vs seconds)",
        &hop_refs,
    );

    // The evolved chain, rendered by the shared per-hop table.
    println!("{}", best.detail_table());

    // Per-flow results table and summary.
    let breakdown = fairness_breakdown(&replay, mss);
    let ccas: Vec<String> = best
        .flows
        .iter()
        .map(|f| f.flow.cca.name().to_string())
        .collect();
    println!(
        "{}",
        per_flow_table(
            &ccas,
            &breakdown.per_flow_goodput_bps,
            &breakdown.per_flow_delivered,
        )
    );
    print_table(
        "Parking-lot summary",
        &[
            ("hops", best.hop_count().to_string()),
            ("bottleneck hop", best.bottleneck_hop().to_string()),
            (
                "cross traffic packets",
                best.traffic
                    .as_ref()
                    .map(|t| t.timestamps.len().to_string())
                    .unwrap_or_else(|| "0".to_string()),
            ),
            ("jain index", format!("{:.4}", breakdown.jain_index)),
            (
                "max starvation",
                format!("{:.3} s", breakdown.max_starvation_secs),
            ),
            (
                "multi-bottleneck score",
                format!("{:.6}", result.best_outcome.score),
            ),
            ("evaluations", result.total_evaluations.to_string()),
        ],
    );
}
