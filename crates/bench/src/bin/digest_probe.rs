//! Prints the behaviour digests of the golden scenarios used by
//! `tests/golden_digests.rs`. Run it whenever the digest contract is
//! *intentionally* changed to regenerate the committed constants.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::paper_sim_base;
use ccfuzz_netsim::queue::Qdisc;
use ccfuzz_netsim::sim::{run_multi_flow_simulation, run_simulation, FlowSpec};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::trace::TrafficTrace;

fn main() {
    let duration = SimDuration::from_secs(5);
    for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
        let mut cfg = paper_sim_base(duration);
        cfg.record_events = false;
        let result = run_simulation(cfg, kind.build(10));
        println!("single/{}: {:#018x}", kind.name(), result.stats.digest());
    }

    // Mixed-CCA fairness scenario with staggered schedules and cross traffic.
    let mut cfg = paper_sim_base(duration);
    cfg.record_events = false;
    let injections: Vec<SimTime> = (0..800).map(|i| SimTime::from_micros(i * 6_000)).collect();
    cfg.cross_traffic = TrafficTrace::new(injections, duration);
    let specs = vec![
        FlowSpec {
            cc: CcaKind::Bbr.build(10),
            start: SimTime::ZERO,
            stop: None,
        },
        FlowSpec {
            cc: CcaKind::Reno.build(10),
            start: SimTime::from_millis(500),
            stop: Some(SimTime::from_secs_f64(4.0)),
        },
        FlowSpec {
            cc: CcaKind::Cubic.build(10),
            start: SimTime::from_secs_f64(1.0),
            stop: None,
        },
    ];
    let result = run_multi_flow_simulation(cfg, specs);
    println!("fairness/bbr-reno-cubic: {:#018x}", result.stats.digest());

    // AQM gateways with ECN on, every CCA: the golden constants for the
    // RED/CoDel marking paths (tests/golden_digests.rs).
    for (label, qdisc) in [
        ("red", Qdisc::red_default(100)),
        ("codel", Qdisc::codel_default()),
    ] {
        for kind in CcaKind::ALL {
            let mut cfg = paper_sim_base(duration);
            cfg.record_events = false;
            cfg.qdisc = qdisc;
            cfg.ecn_enabled = true;
            let result = run_simulation(cfg, kind.build_dispatch(10));
            println!(
                "{label}+ecn/{}: {:#018x}",
                kind.name(),
                result.stats.digest()
            );
        }
    }
}
