//! Perf-trajectory reporter: times the simulator hot path on five fixed
//! workloads and emits `BENCH_sim.json` so every PR has a comparable
//! evals/sec / events/sec / ns-per-event record.
//!
//! Workloads (all deterministic):
//! * `single_flow`   — one Reno flow on the paper's clean 12 Mbps link, 5 s.
//! * `fairness_8flow`— eight mixed-CCA flows sharing the bottleneck, 5 s.
//! * `fairness_32flow` — thirty-two mixed-CCA flows on the same bottleneck,
//!   5 s (tracks flow-count scaling beyond N=8).
//! * `multi_hop`     — a 3-hop parking lot (long Reno flow over the chain
//!   plus a short competitor on the middle bottleneck), 5 s.
//! * `workload_2k`   — flow-churn stress: one always-on elephant plus a
//!   400 flows/s Poisson arrival process (~2000 dynamically spawned and
//!   recycled flows with bounded-Pareto sizes), 5 s. Exercises the slab
//!   recycling + active-set hot path.
//! * `mini_campaign` — a 2-generation traffic-fuzzing GA (4 islands × 8).
//!
//! A machine-speed calibration loop (FNV hashing) is timed alongside so the
//! regression check can normalise across hosts: the gate compares
//! `evals_per_sec / calibration_mops` ratios, not raw wall-clock numbers.
//!
//! Usage:
//!   bench_report [--fast] [--out PATH] [--check PATH] [--tolerance F]
//!
//! `--check` loads a previously committed report and exits non-zero when any
//! gated workload's normalised evals/sec (mini_campaign, fairness_8flow,
//! fairness_32flow, multi_hop and workload_2k) regressed by more than `--tolerance`
//! (default 0.20, i.e. 20 %). A zeroed workload block in the committed
//! report is a hard failure, not a silent skip: an all-zero anchor would
//! otherwise let any regression through for that workload.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{paper_sim_base, Campaign, FuzzMode};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_netsim::sim::{run_multi_flow_simulation, run_simulation, FlowSpec};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::trace::TrafficTrace;
use ccfuzz_obs::{HistogramSnapshot, HuntTelemetry, LatencyQuantiles, LocalHistogram};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing record for one workload.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
struct WorkloadReport {
    /// Simulations (fitness evaluations) completed per second, from the
    /// fastest rep (min-time estimator; the workloads are deterministic).
    evals_per_sec: f64,
    /// Calendar events processed per second, from the fastest rep.
    events_per_sec: f64,
    /// Nanoseconds per calendar event, from the fastest rep.
    ns_per_event: f64,
    /// Events processed per evaluation (workload shape fingerprint).
    events_per_eval: f64,
    /// Repetitions timed.
    reps: u64,
}

/// Per-workload eval-latency percentiles (nanoseconds per evaluation).
#[derive(Clone, Copy, Debug, Default)]
struct LatencyReport {
    /// One Reno flow, clean link.
    single_flow: LatencyQuantiles,
    /// Eight mixed-CCA flows plus cross traffic.
    fairness_8flow: LatencyQuantiles,
    /// Thirty-two mixed-CCA flows plus cross traffic. Zeroed in reports
    /// recorded before the workload existed.
    fairness_32flow: LatencyQuantiles,
    /// Three-hop parking lot.
    multi_hop: LatencyQuantiles,
    /// Flow-churn workload (~2000 arriving flows). Zeroed in reports
    /// recorded before the workload existed.
    workload_2k: LatencyQuantiles,
    /// Per-evaluation latency inside the GA campaign (from the campaign's
    /// own telemetry histogram, not per-rep wall time).
    mini_campaign: LatencyQuantiles,
}

// Hand-written for the same reason as `BenchReport`: committed reports
// predating `fairness_32flow` must still parse (the field defaults to
// zero), otherwise the carry-forward read would silently drop the frozen
// baseline block.
impl Serialize for LatencyReport {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            ("single_flow".to_string(), self.single_flow.to_value()),
            ("fairness_8flow".to_string(), self.fairness_8flow.to_value()),
            (
                "fairness_32flow".to_string(),
                self.fairness_32flow.to_value(),
            ),
            ("multi_hop".to_string(), self.multi_hop.to_value()),
            ("workload_2k".to_string(), self.workload_2k.to_value()),
            ("mini_campaign".to_string(), self.mini_campaign.to_value()),
        ])
    }
}

impl Deserialize for LatencyReport {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::map_get;
        let m = v.as_map("LatencyReport")?;
        Ok(LatencyReport {
            single_flow: Deserialize::from_value(map_get(m, "single_flow")?)?,
            fairness_8flow: Deserialize::from_value(map_get(m, "fairness_8flow")?)?,
            fairness_32flow: match map_get(m, "fairness_32flow") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => LatencyQuantiles::default(),
            },
            multi_hop: Deserialize::from_value(map_get(m, "multi_hop")?)?,
            workload_2k: match map_get(m, "workload_2k") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => LatencyQuantiles::default(),
            },
            mini_campaign: Deserialize::from_value(map_get(m, "mini_campaign")?)?,
        })
    }
}

/// The full report written to `BENCH_sim.json`.
#[derive(Clone, Debug, Default)]
struct BenchReport {
    /// Report schema version.
    schema: u32,
    /// Free-form label for the code state that produced the numbers.
    label: String,
    /// Machine-speed proxy: millions of FNV mix ops per second.
    calibration_mops: f64,
    /// One Reno flow, clean link.
    single_flow: WorkloadReport,
    /// Eight mixed-CCA flows plus cross traffic.
    fairness_8flow: WorkloadReport,
    /// Thirty-two mixed-CCA flows plus cross traffic. Zeroed in reports
    /// recorded before the workload existed.
    fairness_32flow: WorkloadReport,
    /// Three-hop parking lot: one long flow plus one short-path flow.
    /// Zeroed in reports recorded before the topology engine existed.
    multi_hop: WorkloadReport,
    /// Flow-churn stress: ~2000 dynamically arriving flows over 5 s.
    /// Zeroed in reports recorded before the flow-churn engine existed.
    workload_2k: WorkloadReport,
    /// Two-generation GA campaign.
    mini_campaign: WorkloadReport,
    /// Eval-latency p50/p95/p99 per workload. `None` in reports recorded
    /// before the telemetry subsystem existed.
    eval_latency: Option<LatencyReport>,
    /// Numbers recorded before the hot-path overhaul, normalised against
    /// that run's own calibration (kept in the same file so the trajectory
    /// travels with the repo).
    baseline: Option<Box<BenchReport>>,
}

// Serde is hand-written (not derived) because the derived `Deserialize` is
// strict about missing fields: the committed BENCH_sim.json (and the frozen
// baseline block nested inside it) predates `eval_latency`, so that field
// must tolerate absence. It is also omitted on output when `None`, keeping
// old baseline blocks byte-stable.
impl Serialize for BenchReport {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            ("schema".to_string(), self.schema.to_value()),
            ("label".to_string(), self.label.to_value()),
            (
                "calibration_mops".to_string(),
                self.calibration_mops.to_value(),
            ),
            ("single_flow".to_string(), self.single_flow.to_value()),
            ("fairness_8flow".to_string(), self.fairness_8flow.to_value()),
            (
                "fairness_32flow".to_string(),
                self.fairness_32flow.to_value(),
            ),
            ("multi_hop".to_string(), self.multi_hop.to_value()),
            ("workload_2k".to_string(), self.workload_2k.to_value()),
            ("mini_campaign".to_string(), self.mini_campaign.to_value()),
        ];
        if let Some(latency) = &self.eval_latency {
            fields.push(("eval_latency".to_string(), latency.to_value()));
        }
        fields.push(("baseline".to_string(), self.baseline.to_value()));
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for BenchReport {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::map_get;
        let m = v.as_map("BenchReport")?;
        Ok(BenchReport {
            schema: Deserialize::from_value(map_get(m, "schema")?)?,
            label: Deserialize::from_value(map_get(m, "label")?)?,
            calibration_mops: Deserialize::from_value(map_get(m, "calibration_mops")?)?,
            single_flow: Deserialize::from_value(map_get(m, "single_flow")?)?,
            fairness_8flow: Deserialize::from_value(map_get(m, "fairness_8flow")?)?,
            fairness_32flow: match map_get(m, "fairness_32flow") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => WorkloadReport::default(),
            },
            multi_hop: Deserialize::from_value(map_get(m, "multi_hop")?)?,
            workload_2k: match map_get(m, "workload_2k") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => WorkloadReport::default(),
            },
            mini_campaign: Deserialize::from_value(map_get(m, "mini_campaign")?)?,
            eval_latency: match map_get(m, "eval_latency") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => None,
            },
            baseline: match map_get(m, "baseline") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => None,
            },
        })
    }
}

impl BenchReport {
    /// Host-normalised mini-campaign throughput (evals/sec per calibration
    /// MOPS); comparable across machines of different speeds.
    fn normalized_campaign_rate(&self) -> f64 {
        self.normalized_rate(&self.mini_campaign)
    }

    /// Host-normalised throughput for one workload block.
    fn normalized_rate(&self, workload: &WorkloadReport) -> f64 {
        if self.calibration_mops <= 0.0 {
            return 0.0;
        }
        workload.evals_per_sec / self.calibration_mops
    }

    /// The workloads the `--check` regression gate covers, by name.
    fn gated_workloads(&self) -> [(&'static str, &WorkloadReport); 5] {
        [
            ("mini_campaign", &self.mini_campaign),
            ("fairness_8flow", &self.fairness_8flow),
            ("fairness_32flow", &self.fairness_32flow),
            ("multi_hop", &self.multi_hop),
            ("workload_2k", &self.workload_2k),
        ]
    }
}

/// One round of a fixed CPU-bound loop whose throughput proxies single-core
/// machine speed; returns millions of FNV mix ops per second.
///
/// `main` samples this around every workload and keeps the *maximum*: the
/// loop is pure CPU, so interference can only slow it down, and shared
/// hosts speed up and slow down on second-to-minute timescales. The
/// workload rates are min-time estimators (they report the fastest rep,
/// i.e. the fastest host window the run saw), so the divisor must estimate
/// that same fastest window — a single start-of-run calibration taken
/// during a slow window inflates every normalised rate by the full
/// window-to-window swing. (An earlier version measured once up front and
/// kept the slowest of two rounds; its anchors drifted ±30 % run to run
/// for exactly this reason.)
fn calibration_round() -> f64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const ROUNDS: u64 = 40_000_000;
    let start = Instant::now();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..ROUNDS {
        h ^= i;
        h = h.wrapping_mul(PRIME);
    }
    std::hint::black_box(h);
    let secs = start.elapsed().as_secs_f64();
    ROUNDS as f64 / secs / 1e6
}

fn quantiles(snap: &HistogramSnapshot) -> LatencyQuantiles {
    LatencyQuantiles {
        p50_ns: snap.percentile(50.0),
        p95_ns: snap.percentile(95.0),
        p99_ns: snap.percentile(99.0),
    }
}

fn time_workload<F: FnMut() -> u64>(
    reps: u64,
    mut run_once: F,
) -> (WorkloadReport, LatencyQuantiles) {
    // Warm-up run (untimed) so allocator state and caches settle.
    std::hint::black_box(run_once());
    let mut latency = LocalHistogram::new();
    let mut events_total = 0u64;
    // Every workload is deterministic, so all reps do identical work and
    // differ only in host interference — which can only add time. The
    // throughput numbers therefore come from the *fastest* rep (the
    // classic min-time estimator); a mean would let one preempted rep on a
    // shared runner drag the reported rate and trip the gate spuriously.
    // The latency histogram still records every rep, so interference stays
    // visible in the percentile spread.
    let mut best_secs = f64::INFINITY;
    for _ in 0..reps {
        let rep_start = Instant::now();
        events_total += run_once();
        let elapsed = rep_start.elapsed();
        latency.record(elapsed.as_nanos() as u64);
        best_secs = best_secs.min(elapsed.as_secs_f64());
    }
    let best_secs = best_secs.max(1e-9);
    let events_per_eval = events_total as f64 / reps.max(1) as f64;
    let report = WorkloadReport {
        evals_per_sec: 1.0 / best_secs,
        events_per_sec: events_per_eval / best_secs,
        ns_per_event: best_secs * 1e9 / events_per_eval.max(1.0),
        events_per_eval,
        reps,
    };
    (report, quantiles(&latency.snapshot()))
}

fn single_flow(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    time_workload(reps, || {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        let result = run_simulation(cfg, CcaKind::Reno.build(10));
        std::hint::black_box(result.stats.events_processed)
    })
}

fn fairness_8flow(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    let duration = SimDuration::from_secs(5);
    let kinds = [
        CcaKind::Bbr,
        CcaKind::Reno,
        CcaKind::Cubic,
        CcaKind::Vegas,
        CcaKind::Reno,
        CcaKind::Bbr,
        CcaKind::Cubic,
        CcaKind::Reno,
    ];
    let injections: Vec<SimTime> = (0..1_000)
        .map(|i| SimTime::from_micros(i * 5_000))
        .collect();
    time_workload(reps, || {
        let mut cfg = paper_sim_base(duration);
        cfg.record_events = false;
        cfg.cross_traffic = TrafficTrace::new(injections.clone(), duration);
        let specs: Vec<FlowSpec> = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| FlowSpec {
                cc: kind.build(10),
                start: SimTime::from_millis(i as u64 * 250),
                stop: None,
            })
            .collect();
        let result = run_multi_flow_simulation(cfg, specs);
        std::hint::black_box(result.stats.events_processed)
    })
}

fn fairness_32flow(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    let duration = SimDuration::from_secs(5);
    let kinds = [CcaKind::Bbr, CcaKind::Reno, CcaKind::Cubic, CcaKind::Vegas];
    let injections: Vec<SimTime> = (0..1_000)
        .map(|i| SimTime::from_micros(i * 5_000))
        .collect();
    time_workload(reps, || {
        let mut cfg = paper_sim_base(duration);
        cfg.record_events = false;
        cfg.cross_traffic = TrafficTrace::new(injections.clone(), duration);
        let specs: Vec<FlowSpec> = (0..32)
            .map(|i| FlowSpec {
                cc: kinds[i % kinds.len()].build(10),
                start: SimTime::from_millis(i as u64 * 100),
                stop: None,
            })
            .collect();
        let result = run_multi_flow_simulation(cfg, specs);
        std::hint::black_box(result.stats.events_processed)
    })
}

fn multi_hop(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    use ccfuzz_netsim::topology::{HopConfig, HopRange, Topology};
    let duration = SimDuration::from_secs(5);
    time_workload(reps, || {
        let mut cfg = paper_sim_base(duration);
        cfg.record_events = false;
        let mut topology = Topology::chain(vec![
            HopConfig::fixed_rate(12_000_000, SimDuration::from_millis(10), 100),
            HopConfig::fixed_rate(8_000_000, SimDuration::from_millis(5), 60),
            HopConfig::fixed_rate(10_000_000, SimDuration::from_millis(5), 80),
        ]);
        topology.paths = vec![HopRange::full(3), HopRange::new(1, 1)];
        cfg.topology = Some(topology);
        let specs: Vec<FlowSpec> = vec![
            FlowSpec {
                cc: CcaKind::Reno.build(10),
                start: SimTime::ZERO,
                stop: None,
            },
            FlowSpec {
                cc: CcaKind::Reno.build(10),
                start: SimTime::from_millis(500),
                stop: None,
            },
        ];
        let result = run_multi_flow_simulation(cfg, specs);
        std::hint::black_box(result.stats.events_processed)
    })
}

fn workload_2k(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    use ccfuzz_netsim::sim::Simulation;
    use ccfuzz_netsim::workload::{ArrivalConfig, ArrivalProcess, SizeDistribution};
    let duration = SimDuration::from_secs(5);
    time_workload(reps, || {
        let mut cfg = paper_sim_base(duration);
        cfg.record_events = false;
        // 400 flows/s x 5 s ≈ 2000 dynamic flows churning through the slab,
        // with a heavy-tailed size distribution so mice and elephants mix.
        cfg.arrivals = Some(ArrivalConfig {
            process: ArrivalProcess::Poisson {
                rate_per_sec: 400.0,
            },
            size: SizeDistribution {
                shape: 1.2,
                min_packets: 1,
                max_packets: 400,
            },
            mice_threshold_packets: 32,
            max_concurrent: 128,
            max_arrivals: 50_000,
        });
        // Arrivals clone their controller from a prototype pool, so this
        // workload runs on the clonable `CcaDispatch` (the evaluator's own
        // representation) rather than boxed trait objects.
        let specs = vec![FlowSpec {
            cc: CcaKind::Reno.build_dispatch(10),
            start: SimTime::ZERO,
            stop: None,
        }];
        let mut sim = Simulation::new_multi(cfg, specs);
        let mut protos = vec![
            CcaKind::Reno.build_dispatch(10),
            CcaKind::Cubic.build_dispatch(10),
        ];
        sim.install_arrivals(&mut protos);
        let result = sim.run();
        std::hint::black_box(result.stats.events_processed)
    })
}

fn mini_campaign(reps: u64) -> (WorkloadReport, LatencyQuantiles) {
    let events_per_run: u64;
    let mut evals_per_run = 0u64;
    let mut ga = GaParams::quick();
    ga.islands = 4;
    ga.population_per_island = 8;
    ga.generations = 2;
    ga.threads = 1; // single-threaded: measures the hot path, not the scheduler
    ga.seed = 7;
    let campaign = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(3),
        ga,
    );
    // Calibrate events/eval once (events_processed is not surfaced by the
    // GA result; one representative evaluation measures it).
    {
        let evaluator = campaign.evaluator();
        let genome = {
            let mut rng = ccfuzz_netsim::rng::SimRng::new(ga.seed);
            ccfuzz_core::genome::TrafficGenome::generate(
                campaign.traffic_max_packets,
                campaign.duration,
                &mut rng,
            )
        };
        let result = evaluator.simulate_traffic(&genome, false);
        events_per_run = result.stats.events_processed;
    }
    // The campaign's own telemetry histogram gives true per-evaluation
    // latency quantiles (per-rep wall time would only show whole campaigns).
    let telemetry = HuntTelemetry::new();
    let (report, _per_rep) = time_workload(reps, || {
        let result = campaign.run_traffic_with(Some(&telemetry));
        evals_per_run = result.total_evaluations as u64;
        std::hint::black_box(result.total_evaluations as u64 * events_per_run)
    });
    let per_eval = quantiles(&telemetry.metrics.eval_latency_ns.snapshot());
    // Re-express per-evaluation: the campaign runs `evals_per_run` sims.
    let report = WorkloadReport {
        evals_per_sec: report.evals_per_sec * evals_per_run as f64,
        events_per_sec: report.events_per_sec,
        ns_per_event: report.ns_per_event,
        events_per_eval: events_per_run as f64,
        reps: report.reps,
    };
    (report, per_eval)
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--fast] [--out PATH] [--check PATH] [--tolerance F] [--label S]"
    );
    std::process::exit(2);
}

fn main() {
    let mut fast = false;
    let mut out_path = String::from("BENCH_sim.json");
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut label = String::from("current");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--check" => check_path = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--label" => label = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    // Full-mode rep counts are high enough that p95 and p99 are distinct
    // ranks (ceil(.99 n) > ceil(.95 n) needs n > 100): the arena-era hot
    // path runs hundreds of evals/sec, so 120+ reps cost well under a
    // second per workload and buy real latency distributions instead of
    // the max-collapsed percentiles a handful of reps produce.
    // Fast-mode rep counts are post-overhaul: a sim-workload rep costs
    // 1-4 ms now, so ~10 reps per workload add under 100 ms total and give
    // the min-time estimator enough draws to catch an interference-free
    // window on a shared runner. The campaign stays at 3 reps in both
    // modes (a single-rep campaign measurement is noisy enough to trip the
    // 20 % gate without any code change).
    let (reps_single, reps_fair, reps_fair32, reps_multihop, reps_workload, reps_campaign) = if fast
    {
        (10, 8, 8, 10, 8, 3)
    } else {
        (200, 120, 120, 120, 120, 3)
    };

    // Calibration is sampled before every workload and once at the end,
    // max kept — see `calibration_round` for why.
    eprintln!("calibrating machine speed...");
    let mut mops = calibration_round().max(calibration_round());

    eprintln!("timing single_flow ({reps_single} reps)...");
    let (single, single_lat) = single_flow(reps_single);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s, {:.0} ns/event",
        single.evals_per_sec,
        single.events_per_sec / 1e6,
        single.ns_per_event
    );

    mops = mops.max(calibration_round());
    eprintln!("timing fairness_8flow ({reps_fair} reps)...");
    let (fair, fair_lat) = fairness_8flow(reps_fair);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s, {:.0} ns/event",
        fair.evals_per_sec,
        fair.events_per_sec / 1e6,
        fair.ns_per_event
    );

    mops = mops.max(calibration_round());
    eprintln!("timing fairness_32flow ({reps_fair32} reps)...");
    let (fair32, fair32_lat) = fairness_32flow(reps_fair32);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s, {:.0} ns/event",
        fair32.evals_per_sec,
        fair32.events_per_sec / 1e6,
        fair32.ns_per_event
    );

    mops = mops.max(calibration_round());
    eprintln!("timing multi_hop ({reps_multihop} reps)...");
    let (multihop, multihop_lat) = multi_hop(reps_multihop);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s, {:.0} ns/event",
        multihop.evals_per_sec,
        multihop.events_per_sec / 1e6,
        multihop.ns_per_event
    );

    mops = mops.max(calibration_round());
    eprintln!("timing workload_2k ({reps_workload} reps)...");
    let (workload, workload_lat) = workload_2k(reps_workload);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s, {:.0} ns/event",
        workload.evals_per_sec,
        workload.events_per_sec / 1e6,
        workload.ns_per_event
    );

    mops = mops.max(calibration_round());
    eprintln!("timing mini_campaign ({reps_campaign} reps)...");
    let (campaign, campaign_lat) = mini_campaign(reps_campaign);
    eprintln!(
        "  {:.2} evals/s, {:.2} Mevents/s (est), {:.0} ns/event (est)",
        campaign.evals_per_sec,
        campaign.events_per_sec / 1e6,
        campaign.ns_per_event
    );
    eprintln!(
        "  eval latency p50/p95/p99: {}/{}/{} us",
        campaign_lat.p50_ns / 1_000,
        campaign_lat.p95_ns / 1_000,
        campaign_lat.p99_ns / 1_000
    );

    mops = mops.max(calibration_round());
    eprintln!("calibration: {mops:.1} Mops/s (max over interleaved rounds)");

    // Carry the committed baseline forward (if the old report had one, keep
    // the *oldest* so the trajectory anchor never drifts).
    let prior: Option<BenchReport> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    let baseline = prior.map(|mut p| match p.baseline.take() {
        Some(oldest) => oldest,
        None => Box::new(p),
    });

    let report = BenchReport {
        schema: 1,
        label,
        calibration_mops: mops,
        single_flow: single,
        fairness_8flow: fair,
        fairness_32flow: fair32,
        multi_hop: multihop,
        workload_2k: workload,
        mini_campaign: campaign,
        eval_latency: Some(LatencyReport {
            single_flow: single_lat,
            fairness_8flow: fair_lat,
            fairness_32flow: fair32_lat,
            multi_hop: multihop_lat,
            workload_2k: workload_lat,
            mini_campaign: campaign_lat,
        }),
        baseline,
    };

    if let Some(b) = &report.baseline {
        let speedup = report.normalized_campaign_rate() / b.normalized_campaign_rate().max(1e-12);
        eprintln!(
            "mini-campaign speedup vs baseline `{}`: {speedup:.2}x (host-normalised)",
            b.label
        );
    }

    // Atomic write (temp + fsync + rename): an interrupted bench run can
    // never leave a truncated BENCH_sim.json behind for `--check` to choke
    // on.
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    ccfuzz_obs::write_atomic(std::path::Path::new(&out_path), json.as_bytes())
        .expect("write report");
    eprintln!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check {path}: cannot read: {e}"));
        let committed: BenchReport =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("--check {path}: bad JSON: {e}"));
        let mut failed = false;
        let current_workloads = report.gated_workloads();
        for ((name, reference_workload), (_, current_workload)) in
            committed.gated_workloads().iter().zip(current_workloads)
        {
            // A zeroed anchor is a broken gate, not a pass: it would accept
            // any regression for this workload. Fail loudly so the anchor
            // gets backfilled instead.
            if reference_workload.evals_per_sec <= 0.0 || reference_workload.reps == 0 {
                eprintln!(
                    "FAIL: committed {name} block is zeroed — backfill a real \
                     anchor in {path} before gating against it"
                );
                failed = true;
                continue;
            }
            let current = report.normalized_rate(current_workload);
            let reference = committed.normalized_rate(reference_workload);
            let floor = reference * (1.0 - tolerance);
            eprintln!(
                "regression gate [{name}]: current {current:.4} vs committed \
                 {reference:.4} (floor {floor:.4}, tolerance {tolerance:.0}%)",
                tolerance = tolerance * 100.0
            );
            if current < floor {
                eprintln!("FAIL: {name} evals/sec regressed beyond tolerance");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("OK: all gated workloads within tolerance");
    }
}
