//! Figure 4b: a link (service-curve) trace found by CC-Fuzz that causes BBR
//! to get stuck — ingress/egress rates of the BBR flow and the link's service
//! rate over time. Link fuzzing with trace annealing enabled (§3.2).

use ccfuzz_analysis::figures::{rate_curves, trace_capacity};
use ccfuzz_analysis::report::{
    one_line_summary, retransmission_triggered_rounds, spurious_retransmissions,
};
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let mut ga = scale.ga(13, 18, 40);
    ga.anneal = true;
    let campaign = Campaign::paper_standard(FuzzMode::Link, CcaKind::Bbr, duration, ga);

    eprintln!("running link fuzzing vs BBR ({:?} scale)...", scale);
    let result = campaign.run_link();
    let replay = campaign
        .evaluator()
        .simulate_link(&result.best_genome, true);

    let window = SimDuration::from_millis(250);
    let capacity = trace_capacity(&result.best_genome.timestamps, campaign.sim.mss);
    let curves = rate_curves(&replay.stats, &capacity, window, duration);
    print_figure(
        "Figure 4b: CC-Fuzz link trace that causes BBR to get stuck (Mbps vs seconds)",
        &[
            &curves.ingress_mbps,
            &curves.egress_mbps,
            &curves.link_rate_mbps,
        ],
    );

    print_table(
        "Replay of the best link trace against default BBR",
        &[
            (
                "summary",
                one_line_summary(&replay.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "service opportunities",
                result.best_genome.timestamps.len().to_string(),
            ),
            (
                "average link rate",
                format!(
                    "{:.2} Mbps",
                    result.best_genome.average_rate_bps(campaign.sim.mss) / 1e6
                ),
            ),
            ("fitness score", format!("{:.3}", result.best_outcome.score)),
            (
                "goodput",
                format!("{:.2} Mbps", result.best_outcome.goodput_bps / 1e6),
            ),
            (
                "spurious retransmissions",
                spurious_retransmissions(&replay.stats, SimDuration::from_millis(100)).to_string(),
            ),
            (
                "probe rounds ended by retransmitted samples",
                retransmission_triggered_rounds(&replay.stats).to_string(),
            ),
            ("total simulations", result.total_evaluations.to_string()),
        ],
    );
}
