//! Internal diagnostic: run BBR over a clean 12 Mbps link and dump its state
//! transitions, round counter and bandwidth estimate over time.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::paper_sim_base;
use ccfuzz_netsim::sim::run_simulation;
use ccfuzz_netsim::stats::TransportEvent;
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let mut cfg = paper_sim_base(SimDuration::from_secs(5));
    cfg.record_events = true;
    let mss = cfg.mss;
    let result = run_simulation(cfg, CcaKind::Bbr.build(10));
    let f = result.stats.flow();
    println!(
        "delivered={} tx={} retx={} lost={} rtos={} goodput={:.2}Mbps",
        f.delivered_packets,
        f.transmissions,
        f.retransmissions,
        f.marked_lost,
        f.rto_count,
        result.average_goodput_bps(mss) / 1e6
    );
    let mut shown = 0;
    for rec in &result.stats.transport {
        if let TransportEvent::Cc { detail } = &rec.event {
            if shown < 200 {
                println!("{:>9.4}s  {}", rec.at.as_secs_f64(), detail);
                shown += 1;
            }
        }
    }
}
