//! Figure 5: realism scoring (§5). Generates unconstrained service curves
//! with DIST_PACKETS, scores each one by aggregate performance across several
//! CCAs, and shows which traces are accepted (realistic) and which rejected —
//! traces that starve every algorithm early on are rejected.

use ccfuzz_analysis::figures::{cumulative_packet_curve, FigureSeries};
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_core::campaign::paper_sim_base;
use ccfuzz_core::genome::LinkGenome;
use ccfuzz_core::realism::RealismScorer;
use ccfuzz_core::trace_gen::{dist_packets, packets_for_rate, DistPacketsParams};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let base = paper_sim_base(duration);
    let total = packets_for_rate(12_000_000, base.mss, duration);
    // Figure 5 uses traces generated *without* the local rate constraints.
    let params = DistPacketsParams {
        enforce_rate_bounds: false,
        ..Default::default()
    };
    let n_traces = match scale {
        ccfuzz_bench::Scale::Quick => 12,
        ccfuzz_bench::Scale::Paper => 40,
    };

    let scorer = RealismScorer::standard(base);
    let mut rng = SimRng::new(17);
    let mut valid: Vec<FigureSeries> = Vec::new();
    let mut invalid: Vec<FigureSeries> = Vec::new();
    let mut rows = Vec::new();

    eprintln!(
        "scoring {n_traces} unconstrained traces across {} CCAs...",
        scorer.ccas.len()
    );
    for i in 0..n_traces {
        let timestamps = dist_packets(
            total,
            SimTime::ZERO,
            SimTime::ZERO + duration,
            &params,
            &mut rng,
        );
        let genome = LinkGenome {
            timestamps,
            duration,
            k_agg: SimDuration::from_millis(50),
        };
        let outcome = scorer.score_link(&genome);
        let mut curve = cumulative_packet_curve(&genome.timestamps, 80, duration);
        curve.name = format!("trace {i} ({:.2})", outcome.score);
        rows.push((i, outcome.score, outcome.accepted));
        if outcome.accepted {
            valid.push(curve);
        } else {
            invalid.push(curve);
        }
    }

    let refs: Vec<&FigureSeries> = valid.iter().collect();
    print_figure(
        "Figure 5a: traces ACCEPTED by realism scoring (cumulative packets vs ms)",
        &refs,
    );
    let refs: Vec<&FigureSeries> = invalid.iter().collect();
    print_figure(
        "Figure 5b: traces REJECTED by realism scoring (cumulative packets vs ms)",
        &refs,
    );

    let table: Vec<(&str, String)> = vec![
        ("traces scored", n_traces.to_string()),
        ("accepted", valid.len().to_string()),
        ("rejected", invalid.len().to_string()),
        (
            "per-trace scores",
            rows.iter()
                .map(|(i, s, a)| format!("#{i}:{s:.2}{}", if *a { "+" } else { "-" }))
                .collect::<Vec<_>>()
                .join(" "),
        ),
    ];
    print_table("Realism scoring summary", &table);
    println!("\nExpected shape (paper): traces with little capacity early and a late ramp-up");
    println!("are rejected (every CCA starves through no fault of its own); traces whose");
    println!("capacity is spread out are accepted.");
}
