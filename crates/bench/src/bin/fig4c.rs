//! Figure 4c: the timeline of how BBR's probe-round clocking is broken by the
//! interaction of an RTO, spurious retransmissions and delayed SACKs.
//!
//! Instead of relying on the genetic algorithm (whose exact output depends on
//! the seed), this binary replays a *hand-crafted* adversarial scenario that
//! deterministically exercises the mechanism described in §4.1, and prints
//! the transport-level timeline around the RTO plus the BBR-internal events
//! (premature round ends triggered by retransmitted samples).

use ccfuzz_analysis::report::{
    retransmission_triggered_rounds, rto_timeline, spurious_retransmissions,
};
use ccfuzz_bench::print_table;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{paper_sim_base, PAPER_LINK_RATE_BPS};
use ccfuzz_core::genome::TrafficGenome;
use ccfuzz_core::scoring::ScoringConfig;
use ccfuzz_core::SimEvaluator;
use ccfuzz_netsim::time::{SimDuration, SimTime};

/// Builds the hand-crafted cross-traffic pattern:
///  * a large burst at 1.0 s that overflows the queue and makes BBR lose a
///    window of packets (including, together with the second burst, the fast
///    retransmission of the first hole), and
///  * a second burst timed just before the resulting RTO (min-RTO = 1 s) so
///    that the last packets BBR sent before the timeout are still queued
///    behind cross traffic when the RTO fires — their SACKs arrive right
///    after the RTO, immediately after BBR has spuriously retransmitted them.
fn adversarial_traffic(duration: SimDuration) -> TrafficGenome {
    let mut ts: Vec<SimTime> = Vec::new();
    // A sustained on-off pattern: while "on", cross traffic arrives at twice
    // the bottleneck rate (one packet every 500 µs vs. the ~1 ms the 12 Mbps
    // link needs per packet), keeping the drop-tail queue pinned full.
    let mut pulse = |start_ms: u64, end_ms: u64| {
        let mut t = start_ms * 1_000;
        while t < end_ms * 1_000 {
            ts.push(SimTime::from_micros(t));
            t += 500;
        }
    };
    // Pulse 1 (1.00–1.25 s): the queue stays full for ~350 ms (250 ms of
    // arrivals plus drain), so a window of BBR packets is dropped *and* the
    // fast retransmission of the first hole (sent ~150 ms later, once three
    // SACKs for later packets have arrived) is dropped as well. The lost
    // retransmission can only be repaired by the RTO, which is armed at the
    // last cumulative-ACK advance (~1.1 s) + min-RTO (1 s).
    pulse(1_000, 1_250);
    // Pulse 2 (2.00–2.30 s): pins the queue full around the RTO (~2.1 s), so
    // the packets BBR sent just before the timeout are still queued behind
    // cross traffic when it fires. BBR spuriously retransmits them right
    // after the RTO, and their SACKs arrive immediately afterwards — the
    // §4.1 interaction that breaks BBR's probe-round clocking.
    pulse(2_000, 2_300);
    let max = ts.len() * 2;
    TrafficGenome {
        timestamps: ts,
        duration,
        max_packets: max,
    }
}

fn main() {
    let duration = SimDuration::from_secs(5);
    let genome = adversarial_traffic(duration);
    let base = paper_sim_base(duration);
    let scoring = ScoringConfig::low_throughput_default(PAPER_LINK_RATE_BPS as f64);

    println!(
        "Figure 4c: timeline of the BBR probe-clocking bug (hand-crafted trace, {} cross packets)",
        genome.timestamps.len()
    );

    for (label, cca) in [
        ("default BBR", CcaKind::Bbr),
        ("BBR + ProbeRTT-on-RTO", CcaKind::BbrProbeRttOnRto),
    ] {
        let evaluator = SimEvaluator::new(base.clone(), cca, scoring, PAPER_LINK_RATE_BPS);
        let run = evaluator.simulate_traffic(&genome, true);
        print_table(
            &format!("{label}: outcome"),
            &[
                (
                    "delivered packets",
                    run.stats.flow().delivered_packets.to_string(),
                ),
                (
                    "goodput",
                    format!("{:.2} Mbps", run.average_goodput_bps(base.mss) / 1e6),
                ),
                ("RTOs", run.stats.flow().rto_count.to_string()),
                (
                    "retransmissions",
                    run.stats.flow().retransmissions.to_string(),
                ),
                (
                    "spurious retransmissions",
                    spurious_retransmissions(&run.stats, SimDuration::from_millis(100)).to_string(),
                ),
                (
                    "probe rounds ended by retransmitted samples",
                    retransmission_triggered_rounds(&run.stats).to_string(),
                ),
            ],
        );
        if cca == CcaKind::Bbr {
            println!("\n--- transport + BBR timeline around each RTO (default BBR) ---");
            print!(
                "{}",
                rto_timeline(&run.stats, SimDuration::from_millis(500), 120)
            );
        }
    }

    println!("\nReading the timeline: after the RTO, packets whose originals are still queued");
    println!("behind cross traffic are retransmitted (RETX lines with a large stamped");
    println!("'delivered'); their SACKs arrive right afterwards, each one ending a BBR probe");
    println!("round prematurely (CC lines flagging RETRANSMITTED samples). Ten such rounds");
    println!("expire every good estimate from BBR's bandwidth max-filter.");
}
