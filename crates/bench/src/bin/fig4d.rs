//! Figure 4d: CC-Fuzz convergence with and without the BBR patch.
//!
//! Runs the same traffic-fuzzing campaign twice — once against default BBR
//! and once against BBR with the ProbeRTT-on-RTO mitigation — and plots, per
//! generation, the mean packets delivered by the CCA across the top-20
//! worst traces (the paper's y-axis, "packets sent"). Default BBR should be
//! driven to a (near-)stall; the patched BBR loses some throughput but does
//! not stall.

use ccfuzz_analysis::figures::FigureSeries;
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);

    let mut series = Vec::new();
    let mut finals = Vec::new();
    for (label, cca) in [
        ("Default BBR", CcaKind::Bbr),
        ("BBR (ProbeRTT on RTO)", CcaKind::BbrProbeRttOnRto),
    ] {
        let ga = scale.ga(7, 18, 40);
        let campaign = Campaign::paper_standard(FuzzMode::Traffic, cca, duration, ga);
        eprintln!("fuzzing {label} ({:?} scale)...", scale);
        let result = campaign.run_traffic();
        let points: Vec<(f64, f64)> = result
            .history
            .iter()
            .map(|h| (h.generation as f64, h.top_k_mean_delivered))
            .collect();
        series.push(FigureSeries::new(label, points));
        finals.push((
            label,
            format!(
                "final top-{} mean delivered = {:.0} packets, best-trace goodput = {:.2} Mbps",
                campaign.ga.report_top_k,
                result
                    .history
                    .last()
                    .map(|h| h.top_k_mean_delivered)
                    .unwrap_or(0.0),
                result.best_outcome.goodput_bps / 1e6
            ),
        ));
    }

    let refs: Vec<&FigureSeries> = series.iter().collect();
    print_figure(
        "Figure 4d: packets delivered by the worst traces per generation, default BBR vs patched BBR",
        &refs,
    );
    print_table("Final generation", &finals);
    println!("\nExpected shape (paper): the curve for default BBR drops as the GA discovers");
    println!("stall-inducing traces; the ProbeRTT-on-RTO variant stays clearly higher (it");
    println!("loses a little throughput to the extra min-RTT probes but never stalls).");
}
