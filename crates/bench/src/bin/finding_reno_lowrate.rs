//! §4.3 finding: CC-Fuzz rediscovers the low-rate TCP attack against Reno —
//! periodic cross-traffic bursts aligned with the RTO that keep losing the
//! same packets, locking the flow into exponential RTO backoff.

use ccfuzz_analysis::figures::{constant_rate_capacity, rate_curves};
use ccfuzz_analysis::report::one_line_summary;
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode, PAPER_LINK_RATE_BPS};
use ccfuzz_netsim::stats::TransportEvent;
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(11, 18, 40);
    let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, ga);

    eprintln!("running traffic fuzzing vs Reno ({:?} scale)...", scale);
    let result = campaign.run_traffic();
    let replay = campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);

    let window = SimDuration::from_millis(250);
    let capacity = constant_rate_capacity(PAPER_LINK_RATE_BPS, window, duration);
    let curves = rate_curves(&replay.stats, &capacity, window, duration);
    print_figure(
        "Reno low-rate-attack-like trace: rates over time (Mbps vs seconds)",
        &[
            &curves.ingress_mbps,
            &curves.egress_mbps,
            &curves.traffic_mbps,
            &curves.link_rate_mbps,
        ],
    );

    let rto_backoffs: Vec<u32> = replay
        .stats
        .transport
        .iter()
        .filter_map(|r| match r.event {
            TransportEvent::RtoFired { backoff } => Some(backoff),
            _ => None,
        })
        .collect();
    print_table(
        "Best trace vs Reno",
        &[
            (
                "summary",
                one_line_summary(&replay.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "cross-traffic packets",
                result.best_genome.timestamps.len().to_string(),
            ),
            (
                "goodput",
                format!(
                    "{:.2} Mbps (link is 12 Mbps)",
                    result.best_outcome.goodput_bps / 1e6
                ),
            ),
            ("RTO count", rto_backoffs.len().to_string()),
            (
                "max RTO backoff exponent",
                rto_backoffs.iter().max().copied().unwrap_or(0).to_string(),
            ),
            ("fitness score", format!("{:.3}", result.best_outcome.score)),
        ],
    );
    println!("\nExpected shape (paper): the evolved cross traffic is a sparse sequence of");
    println!("bursts whose spacing tracks Reno's retransmission timing, so the same packets");
    println!("are lost after every retransmission and Reno never ramps up after slow start");
    println!("(repeated RTOs with growing backoff, goodput a small fraction of the link).");
}
