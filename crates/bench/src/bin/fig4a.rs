//! Figure 4a: a cross-traffic trace found by CC-Fuzz that causes BBR to get
//! stuck — ingress/egress rates of the BBR flow, the cross-traffic rate and
//! the (fixed 12 Mbps) link rate over time.

use ccfuzz_analysis::figures::{constant_rate_capacity, rate_curves};
use ccfuzz_analysis::report::{
    one_line_summary, retransmission_triggered_rounds, spurious_retransmissions,
};
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode, PAPER_LINK_RATE_BPS};
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(7, 18, 40);
    let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Bbr, duration, ga);

    eprintln!("running traffic fuzzing vs BBR ({:?} scale)...", scale);
    let result = campaign.run_traffic();
    let replay = campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);

    let window = SimDuration::from_millis(250);
    let capacity = constant_rate_capacity(PAPER_LINK_RATE_BPS, window, duration);
    let curves = rate_curves(&replay.stats, &capacity, window, duration);
    print_figure(
        "Figure 4a: CC-Fuzz traffic trace that causes BBR to get stuck (Mbps vs seconds)",
        &[
            &curves.ingress_mbps,
            &curves.egress_mbps,
            &curves.traffic_mbps,
            &curves.link_rate_mbps,
        ],
    );

    print_table(
        "Replay of the best trace against default BBR",
        &[
            (
                "summary",
                one_line_summary(&replay.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "cross-traffic packets",
                result.best_genome.timestamps.len().to_string(),
            ),
            ("fitness score", format!("{:.3}", result.best_outcome.score)),
            (
                "goodput",
                format!(
                    "{:.2} Mbps (link is 12 Mbps)",
                    result.best_outcome.goodput_bps / 1e6
                ),
            ),
            (
                "spurious retransmissions",
                spurious_retransmissions(&replay.stats, SimDuration::from_millis(100)).to_string(),
            ),
            (
                "probe rounds ended by retransmitted samples",
                retransmission_triggered_rounds(&replay.stats).to_string(),
            ),
            ("total simulations", result.total_evaluations.to_string()),
        ],
    );
}
