//! Figure 4e: CC-Fuzz triggering high queuing delays in BBR with cross
//! traffic — the per-packet queuing delay of the BBR flow and of the cross
//! traffic over time, for the best trace found with the 10th-percentile-delay
//! objective (§4.3).

use ccfuzz_analysis::figures::queuing_delay_series;
use ccfuzz_analysis::report::one_line_summary;
use ccfuzz_analysis::timeseries::percentile;
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_netsim::packet::FlowId;
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(31, 18, 40);
    let campaign = Campaign::paper_high_delay(FuzzMode::Traffic, CcaKind::Bbr, duration, ga);

    eprintln!(
        "running traffic fuzzing vs BBR with the p10-delay objective ({:?} scale)...",
        scale
    );
    let result = campaign.run_traffic();
    let replay = campaign
        .evaluator()
        .simulate_traffic(&result.best_genome, true);

    let (bbr_delay, cross_delay) = queuing_delay_series(&replay.stats);
    print_figure(
        "Figure 4e: queuing delay (ms) over time for the BBR flow and the cross traffic",
        &[&bbr_delay, &cross_delay],
    );

    let delays_ms: Vec<f64> = replay
        .stats
        .queuing_delays(FlowId::Cca(0))
        .iter()
        .map(|(_, d)| d.as_secs_f64() * 1e3)
        .collect();
    print_table(
        "Best high-delay trace",
        &[
            (
                "summary",
                one_line_summary(&replay.stats, duration.as_secs_f64(), campaign.sim.mss),
            ),
            (
                "cross-traffic packets",
                result.best_genome.timestamps.len().to_string(),
            ),
            (
                "p10 queuing delay",
                format!("{:.1} ms", percentile(&delays_ms, 10.0)),
            ),
            (
                "median queuing delay",
                format!("{:.1} ms", percentile(&delays_ms, 50.0)),
            ),
            (
                "p90 queuing delay",
                format!("{:.1} ms", percentile(&delays_ms, 90.0)),
            ),
            ("max queuing delay", format!("{:.1} ms", bbr_delay.max_y())),
            ("total simulations", result.total_evaluations.to_string()),
        ],
    );
    println!("\nExpected shape (paper): the evolved cross traffic (1) fills the queue just");
    println!("before BBR starts so BBR never sees the true minimum RTT, and (2) injects more");
    println!("traffic right after slow start, so the standing queue (and therefore the");
    println!("queuing delay) stays high for most of the run.");
}
