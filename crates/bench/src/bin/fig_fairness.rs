//! Fairness figure: per-flow results of a fairness-fuzzing campaign.
//!
//! Runs the fairness campaign preset (BBR vs. Reno on the paper's 12 Mbps /
//! 20 ms dumbbell), lets the GA evolve the flow schedule and an optional
//! cross-traffic helper toward maximal unfairness, then replays the best
//! scenario and prints:
//!
//! * the GA convergence curve (best unfairness score per generation),
//! * per-flow windowed-throughput curves of the worst scenario found,
//! * a per-flow results table with goodput shares, Jain's index and the
//!   starvation duration.
//!
//! `--paper-scale` runs the full-size GA; the default quick scale finishes
//! in well under a minute.

use ccfuzz_analysis::figures::FigureSeries;
use ccfuzz_analysis::table::per_flow_table;
use ccfuzz_analysis::timeseries::windowed_throughput_bps;
use ccfuzz_bench::{print_figure, print_table, Scale};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::Campaign;
use ccfuzz_core::scoring::fairness_breakdown;
use ccfuzz_netsim::time::SimDuration;

fn main() {
    let scale = Scale::from_args();
    let duration = SimDuration::from_secs(5);
    let ga = scale.ga(21, 8, 40);
    let flow_ccas = vec![CcaKind::Bbr, CcaKind::Reno];
    let campaign = Campaign::paper_fairness(flow_ccas, duration, ga);
    let result = campaign.run_fairness();

    // Convergence of the unfairness objective.
    let convergence = FigureSeries::new(
        "best unfairness score",
        result
            .history
            .iter()
            .map(|h| (h.generation as f64, h.best_score))
            .collect(),
    );
    print_figure(
        "Fairness fuzzing: best score per generation (BBR vs. Reno, 12 Mbps / 20 ms)",
        &[&convergence],
    );

    // Replay the worst scenario with full recording and chart each flow.
    let evaluator = campaign.evaluator();
    let best = &result.best_genome;
    let replay = evaluator.simulate_scenario(best, true);
    let mss = campaign.sim.mss;
    let window = SimDuration::from_millis(250);
    let series: Vec<FigureSeries> = replay
        .stats
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let points = windowed_throughput_bps(&f.delivery_times, mss, window, duration)
                .into_iter()
                .map(|(t, bps)| (t.as_secs_f64(), bps / 1e6))
                .collect();
            FigureSeries::new(format!("flow {i} ({})", best.flows[i].cca.name()), points)
        })
        .collect();
    let refs: Vec<&FigureSeries> = series.iter().collect();
    print_figure(
        "Worst scenario found: per-flow throughput (Mbps vs seconds)",
        &refs,
    );

    // Per-flow results table.
    let breakdown = fairness_breakdown(&replay, mss);
    let ccas: Vec<String> = best
        .flows
        .iter()
        .map(|f| f.cca.name().to_string())
        .collect();
    println!(
        "{}",
        per_flow_table(
            &ccas,
            &breakdown.per_flow_goodput_bps,
            &breakdown.per_flow_delivered,
        )
    );
    let schedule: Vec<String> = best
        .flows
        .iter()
        .map(|f| {
            format!(
                "{} [{:.2}s..{}]",
                f.cca.name(),
                f.start.as_secs_f64(),
                f.stop
                    .map(|t| format!("{:.2}s", t.as_secs_f64()))
                    .unwrap_or_else(|| "end".to_string())
            )
        })
        .collect();
    print_table(
        "Fairness summary",
        &[
            ("flows", schedule.join(", ")),
            (
                "cross traffic packets",
                best.traffic
                    .as_ref()
                    .map(|t| t.timestamps.len().to_string())
                    .unwrap_or_else(|| "0".to_string()),
            ),
            ("jain index", format!("{:.4}", breakdown.jain_index)),
            (
                "max starvation",
                format!("{:.3} s", breakdown.max_starvation_secs),
            ),
            (
                "unfairness score",
                format!("{:.6}", result.best_outcome.score),
            ),
            ("evaluations", result.total_evaluations.to_string()),
        ],
    );
}
