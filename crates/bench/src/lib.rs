//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one figure (or textual finding)
//! from the paper. They all follow the same pattern: build a
//! [`Campaign`](ccfuzz_core::campaign::Campaign) (scaled down by default,
//! paper-scale with `--paper-scale`), run it, replay the best trace with full
//! event recording, and print both an ASCII chart and CSV series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ccfuzz_analysis::figures::FigureSeries;
use ccfuzz_analysis::plot::{ascii_chart, to_csv};
use ccfuzz_core::fuzzer::GaParams;

/// Scale of a figure run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small populations / few generations: completes in seconds to a couple
    /// of minutes; preserves the qualitative shape of every figure.
    Quick,
    /// The paper's §4 settings (population 500, 20 islands). Slow.
    Paper,
}

impl Scale {
    /// Reads the scale from the process arguments (`--paper-scale` selects
    /// [`Scale::Paper`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper-scale") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// GA parameters for this scale with a fixed seed, `generations`
    /// generations at quick scale and `paper_generations` at paper scale.
    pub fn ga(&self, seed: u64, generations: u32, paper_generations: u32) -> GaParams {
        let mut ga = match self {
            Scale::Quick => GaParams::quick(),
            Scale::Paper => GaParams::paper_default(),
        };
        ga.seed = seed;
        ga.generations = match self {
            Scale::Quick => generations,
            Scale::Paper => paper_generations,
        };
        ga
    }
}

/// Prints a figure as an ASCII chart followed by its CSV series, under a
/// heading — the uniform output format of all figure binaries.
pub fn print_figure(heading: &str, series: &[&FigureSeries]) {
    println!("\n################################################################");
    println!("# {heading}");
    println!("################################################################");
    println!("{}", ascii_chart(heading, series, 90, 18));
    println!("--- CSV ---");
    println!("{}", to_csv(series));
}

/// Prints a small key/value table (used for textual findings).
pub fn print_table(heading: &str, rows: &[(&str, String)]) {
    println!("\n=== {heading} ===");
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<width$} : {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        let quick = Scale::Quick.ga(3, 10, 40);
        assert_eq!(quick.generations, 10);
        assert_eq!(quick.seed, 3);
        let paper = Scale::Paper.ga(3, 10, 40);
        assert_eq!(paper.generations, 40);
        assert_eq!(paper.total_population(), 500);
    }

    #[test]
    fn print_helpers_do_not_panic() {
        let s = FigureSeries::new("x", vec![(0.0, 1.0), (1.0, 2.0)]);
        print_figure("test figure", &[&s]);
        print_table("test table", &[("key", "value".to_string())]);
    }
}
