//! Criterion benchmarks for the simulator substrate: how fast one fitness
//! evaluation (a full 5-second dumbbell simulation) runs for each CCA. These
//! numbers bound how large a GA population / generation count is practical.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::paper_sim_base;
use ccfuzz_netsim::link::LinkModel;
use ccfuzz_netsim::sim::run_simulation;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::trace::TrafficTrace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn clean_link_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_clean_5s");
    group.sample_size(10);
    for cca in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
        group.bench_with_input(BenchmarkId::from_parameter(cca.name()), &cca, |b, &cca| {
            b.iter(|| {
                let mut cfg = paper_sim_base(SimDuration::from_secs(5));
                cfg.record_events = false;
                let result = run_simulation(cfg, cca.build(10));
                std::hint::black_box(result.stats.flow().delivered_packets)
            });
        });
    }
    group.finish();
}

fn cross_traffic_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_with_cross_traffic_5s");
    group.sample_size(10);
    let duration = SimDuration::from_secs(5);
    // ~2000 cross packets spread over the run.
    let injections: Vec<SimTime> = (0..2_000)
        .map(|i| SimTime::from_micros(i * 2_500))
        .collect();
    for cca in [CcaKind::Reno, CcaKind::Bbr] {
        group.bench_with_input(BenchmarkId::from_parameter(cca.name()), &cca, |b, &cca| {
            b.iter(|| {
                let mut cfg = paper_sim_base(duration);
                cfg.record_events = false;
                cfg.link = LinkModel::FixedRate {
                    rate_bps: 12_000_000,
                };
                cfg.cross_traffic = TrafficTrace::new(injections.clone(), duration);
                let result = run_simulation(cfg, cca.build(10));
                std::hint::black_box(result.stats.flow().delivered_packets)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, clean_link_simulation, cross_traffic_simulation);
criterion_main!(benches);
