//! Hot-path benchmarks tracked by `BENCH_sim.json`.
//!
//! Three fixed workloads bound the fuzzer's evaluations-per-second:
//! a single-flow paper scenario, an 8-flow mixed-CCA fairness run, and a
//! 2-generation mini GA campaign. `bench_report` times the same workloads
//! and records them as JSON; this criterion suite exists for interactive
//! `cargo bench` runs and to keep the workloads compiling under CI's
//! `cargo bench --no-run`.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{paper_sim_base, Campaign, FuzzMode};
use ccfuzz_core::evaluate::{EvalScratch, Evaluator};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_core::genome::TrafficGenome;
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::sim::{run_multi_flow_simulation, run_simulation, FlowSpec};
use ccfuzz_netsim::time::{SimDuration, SimTime};
use ccfuzz_netsim::trace::TrafficTrace;
use criterion::{criterion_group, criterion_main, Criterion};

fn single_flow_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_single_flow_5s");
    group.sample_size(10);
    group.bench_function("reno_enum_dispatch", |b| {
        b.iter(|| {
            let mut cfg = paper_sim_base(SimDuration::from_secs(5));
            cfg.record_events = false;
            let result = run_simulation(cfg, CcaKind::Reno.build_dispatch(10));
            std::hint::black_box(result.stats.events_processed)
        });
    });
    group.bench_function("reno_boxed_dispatch", |b| {
        b.iter(|| {
            let mut cfg = paper_sim_base(SimDuration::from_secs(5));
            cfg.record_events = false;
            let result = run_simulation(cfg, CcaKind::Reno.build(10));
            std::hint::black_box(result.stats.events_processed)
        });
    });
    group.finish();
}

fn fairness_8flow_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_fairness_8flow_5s");
    group.sample_size(10);
    let duration = SimDuration::from_secs(5);
    let kinds = [
        CcaKind::Bbr,
        CcaKind::Reno,
        CcaKind::Cubic,
        CcaKind::Vegas,
        CcaKind::Reno,
        CcaKind::Bbr,
        CcaKind::Cubic,
        CcaKind::Reno,
    ];
    let injections: Vec<SimTime> = (0..1_000)
        .map(|i| SimTime::from_micros(i * 5_000))
        .collect();
    group.bench_function("mixed_ccas", |b| {
        b.iter(|| {
            let mut cfg = paper_sim_base(duration);
            cfg.record_events = false;
            cfg.cross_traffic = TrafficTrace::new(injections.clone(), duration);
            let specs: Vec<FlowSpec<_>> = kinds
                .iter()
                .enumerate()
                .map(|(i, kind)| FlowSpec {
                    cc: kind.build_dispatch(10),
                    start: SimTime::from_millis(i as u64 * 250),
                    stop: None,
                })
                .collect();
            let result = run_multi_flow_simulation(cfg, specs);
            std::hint::black_box(result.stats.events_processed)
        });
    });
    group.finish();
}

fn aqm_gateway_run(c: &mut Criterion) {
    // The qdisc layer's hot path: the same single-flow scenario behind RED
    // and CoDel gateways with ECN on. Comparing against
    // `hotpath_single_flow_5s` shows what the AQM dispatch costs (drop-tail
    // itself pays only an enum discriminant check per packet).
    use ccfuzz_netsim::queue::Qdisc;
    let mut group = c.benchmark_group("hotpath_aqm_5s");
    group.sample_size(10);
    for (label, qdisc) in [
        ("red_ecn", Qdisc::red_default(100)),
        ("codel_ecn", Qdisc::codel_default()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = paper_sim_base(SimDuration::from_secs(5));
                cfg.record_events = false;
                cfg.qdisc = qdisc;
                cfg.ecn_enabled = true;
                let result = run_simulation(cfg, CcaKind::Reno.build_dispatch(10));
                std::hint::black_box(result.stats.events_processed)
            });
        });
    }
    group.finish();
}

fn multihop_chain_run(c: &mut Criterion) {
    // The topology engine's hot path: a 3-hop parking lot (long Reno flow
    // over the whole chain, short competitor on the middle bottleneck).
    // Comparing against `hotpath_single_flow_5s` shows what hop-by-hop
    // routing costs per event.
    use ccfuzz_netsim::topology::{HopConfig, HopRange, Topology};
    let mut group = c.benchmark_group("hotpath_multihop_5s");
    group.sample_size(10);
    group.bench_function("parking_lot_3hop", |b| {
        b.iter(|| {
            let mut cfg = paper_sim_base(SimDuration::from_secs(5));
            cfg.record_events = false;
            let mut topology = Topology::chain(vec![
                HopConfig::fixed_rate(12_000_000, SimDuration::from_millis(10), 100),
                HopConfig::fixed_rate(8_000_000, SimDuration::from_millis(5), 60),
                HopConfig::fixed_rate(10_000_000, SimDuration::from_millis(5), 80),
            ]);
            topology.paths = vec![HopRange::full(3), HopRange::new(1, 1)];
            cfg.topology = Some(topology);
            let specs: Vec<FlowSpec<_>> = vec![
                FlowSpec {
                    cc: CcaKind::Reno.build_dispatch(10),
                    start: SimTime::ZERO,
                    stop: None,
                },
                FlowSpec {
                    cc: CcaKind::Reno.build_dispatch(10),
                    start: SimTime::from_millis(500),
                    stop: None,
                },
            ];
            let result = run_multi_flow_simulation(cfg, specs);
            std::hint::black_box(result.stats.events_processed)
        });
    });
    group.finish();
}

fn mini_campaign_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_mini_campaign");
    group.sample_size(10);
    let mut ga = GaParams::quick();
    ga.islands = 4;
    ga.population_per_island = 8;
    ga.generations = 2;
    ga.threads = 1;
    ga.seed = 7;
    let campaign = Campaign::paper_standard(
        FuzzMode::Traffic,
        CcaKind::Reno,
        SimDuration::from_secs(3),
        ga,
    );
    group.bench_function("traffic_2gen_4x8", |b| {
        b.iter(|| {
            let result = campaign.run_traffic();
            std::hint::black_box(result.total_evaluations)
        });
    });
    // The per-evaluation primitive the campaign amortises: one genome
    // evaluated with reusable scratch (what a steady-state worker does).
    let evaluator = campaign.evaluator();
    let genome = {
        let mut rng = SimRng::new(7);
        TrafficGenome::generate(campaign.traffic_max_packets, campaign.duration, &mut rng)
    };
    group.bench_function("single_eval_scratch_reuse", |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| std::hint::black_box(evaluator.evaluate_reusing(&genome, &mut scratch).score));
    });
    group.finish();
}

criterion_group!(
    benches,
    single_flow_run,
    fairness_8flow_run,
    aqm_gateway_run,
    multihop_chain_run,
    mini_campaign_run
);
criterion_main!(benches);
