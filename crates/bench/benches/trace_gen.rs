//! Criterion benchmarks for trace generation and the genome operators
//! (DIST_PACKETS, mutation, crossover, annealing) — the non-simulation part
//! of a GA generation.

use ccfuzz_core::genome::{Genome, LinkGenome, TrafficGenome};
use ccfuzz_core::trace_gen::{dist_packets, DistPacketsParams};
use ccfuzz_netsim::rng::SimRng;
use ccfuzz_netsim::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn dist_packets_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_packets");
    for &n in &[1_000usize, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let params = DistPacketsParams::default();
            let mut rng = SimRng::new(1);
            b.iter(|| {
                let ts = dist_packets(
                    n,
                    SimTime::ZERO,
                    SimTime::from_millis(5_000),
                    &params,
                    &mut rng,
                );
                std::hint::black_box(ts.len())
            });
        });
    }
    group.finish();
}

fn genome_operators(c: &mut Criterion) {
    let duration = SimDuration::from_secs(5);
    let mut rng = SimRng::new(2);
    let link = LinkGenome::generate(5_000, duration, SimDuration::from_millis(50), &mut rng);
    let traffic_a = TrafficGenome::generate(5_000, duration, &mut rng);
    let traffic_b = TrafficGenome::generate(5_000, duration, &mut rng);

    c.bench_function("link_mutation_5000pkts", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| std::hint::black_box(link.mutate(&mut rng).packet_count()));
    });
    c.bench_function("link_annealing_5000pkts", |b| {
        let mut rng = SimRng::new(4);
        b.iter(|| {
            std::hint::black_box(
                link.anneal(3, SimDuration::from_micros(200), &mut rng)
                    .packet_count(),
            )
        });
    });
    c.bench_function("traffic_mutation_5000pkts", |b| {
        let mut rng = SimRng::new(5);
        b.iter(|| std::hint::black_box(traffic_a.mutate(&mut rng).packet_count()));
    });
    c.bench_function("traffic_crossover_5000pkts", |b| {
        let mut rng = SimRng::new(6);
        b.iter(|| {
            std::hint::black_box(
                traffic_a
                    .crossover(&traffic_b, &mut rng)
                    .unwrap()
                    .packet_count(),
            )
        });
    });
}

criterion_group!(benches, dist_packets_bench, genome_operators);
criterion_main!(benches);
