//! Criterion benchmark for a full GA generation step (evaluation + evolution)
//! at quick scale, against Reno — this is the unit of work the paper's
//! population-of-500, tens-of-generations campaigns repeat.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_netsim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn ga_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_generation");
    group.sample_size(10);
    group.bench_function("traffic_reno_2islands_x4_2s", |b| {
        b.iter(|| {
            let mut ga = GaParams::quick();
            ga.islands = 2;
            ga.population_per_island = 4;
            ga.generations = 1;
            ga.seed = 9;
            let campaign = Campaign::paper_standard(
                FuzzMode::Traffic,
                CcaKind::Reno,
                SimDuration::from_secs(2),
                ga,
            );
            let result = campaign.run_traffic();
            std::hint::black_box(result.total_evaluations)
        });
    });
    group.finish();
}

criterion_group!(benches, ga_generation);
criterion_main!(benches);
