//! Behaviour signatures: coarse, quantized fingerprints of *what an
//! adversarial trace did to the CCA*, used to deduplicate findings.
//!
//! Two traces that starve the CCA the same way (same goodput band, same
//! order-of-magnitude of RTOs, retransmissions and drops) are the same
//! finding for regression purposes, even if their timestamps differ — the GA
//! produces endless near-duplicates of a winning trace. Buckets are
//! deliberately coarse: goodput and score in 5 % steps, event counters in
//! power-of-two bands.

use ccfuzz_core::evaluate::EvalOutcome;
use serde::{Deserialize, Serialize};

/// The quantized behaviour fingerprint of one evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BehaviorSignature {
    /// Goodput relative to the reference rate, in 5 % buckets (0..=20).
    pub goodput_bucket: u8,
    /// Performance score in 5 % buckets (0..=20).
    pub perf_bucket: u8,
    /// `log2`-band of the RTO count (0 for none, else `1 + log2(count)`).
    pub rto_bucket: u8,
    /// `log2`-band of the retransmission count.
    pub retx_bucket: u8,
    /// `log2`-band of the CCA queue-drop count.
    pub drop_bucket: u8,
}

/// Places a count into a power-of-two band: 0 -> 0, 1 -> 1, 2-3 -> 2,
/// 4-7 -> 3, ...
fn log2_band(count: u64) -> u8 {
    if count == 0 {
        0
    } else {
        (64 - count.leading_zeros()) as u8
    }
}

/// Places a fraction into 5 % buckets, clamped to [0, 20].
fn fraction_bucket(fraction: f64) -> u8 {
    if !fraction.is_finite() || fraction <= 0.0 {
        0
    } else {
        (fraction * 20.0).floor().min(20.0) as u8
    }
}

impl BehaviorSignature {
    /// Builds the signature of an evaluation, normalising goodput by
    /// `reference_rate_bps` (the bottleneck / average link rate).
    pub fn from_outcome(outcome: &EvalOutcome, reference_rate_bps: f64) -> Self {
        let reference = reference_rate_bps.max(1.0);
        BehaviorSignature {
            goodput_bucket: fraction_bucket(outcome.goodput_bps / reference),
            perf_bucket: fraction_bucket(outcome.performance_score),
            rto_bucket: log2_band(outcome.rto_count),
            retx_bucket: log2_band(outcome.retransmissions),
            drop_bucket: log2_band(outcome.queue_drops),
        }
    }

    /// Packs the signature into a single integer key (used in finding ids
    /// and for dedup lookups).
    pub fn key(&self) -> u64 {
        (self.goodput_bucket as u64)
            | (self.perf_bucket as u64) << 8
            | (self.rto_bucket as u64) << 16
            | (self.retx_bucket as u64) << 24
            | (self.drop_bucket as u64) << 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(goodput_bps: f64, perf: f64, rtos: u64, retx: u64, drops: u64) -> EvalOutcome {
        EvalOutcome {
            goodput_bps,
            performance_score: perf,
            rto_count: rtos,
            retransmissions: retx,
            queue_drops: drops,
            ..Default::default()
        }
    }

    #[test]
    fn similar_outcomes_share_a_signature() {
        let a = BehaviorSignature::from_outcome(&outcome(3.01e6, 0.81, 4, 33, 17), 12e6);
        let b = BehaviorSignature::from_outcome(&outcome(3.20e6, 0.84, 5, 40, 20), 12e6);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn different_behaviours_differ() {
        let starved = BehaviorSignature::from_outcome(&outcome(0.5e6, 0.95, 8, 100, 50), 12e6);
        let healthy = BehaviorSignature::from_outcome(&outcome(11.5e6, 0.05, 0, 0, 0), 12e6);
        assert_ne!(starved, healthy);
        assert_ne!(starved.key(), healthy.key());
    }

    #[test]
    fn buckets_handle_extremes() {
        let sig = BehaviorSignature::from_outcome(&outcome(f64::NAN, -1.0, 0, 0, 0), 12e6);
        assert_eq!(sig.goodput_bucket, 0);
        assert_eq!(sig.perf_bucket, 0);
        assert_eq!(sig.rto_bucket, 0);
        // Over-reference goodput clamps to the top bucket.
        let sig = BehaviorSignature::from_outcome(&outcome(20e6, 2.0, u64::MAX, 1, 2), 12e6);
        assert_eq!(sig.goodput_bucket, 20);
        assert_eq!(sig.perf_bucket, 20);
        assert_eq!(sig.rto_bucket, 64);
        assert_eq!(sig.retx_bucket, 1);
        assert_eq!(sig.drop_bucket, 2);
    }

    #[test]
    fn log2_bands() {
        assert_eq!(log2_band(0), 0);
        assert_eq!(log2_band(1), 1);
        assert_eq!(log2_band(2), 2);
        assert_eq!(log2_band(3), 2);
        assert_eq!(log2_band(4), 3);
        assert_eq!(log2_band(7), 3);
        assert_eq!(log2_band(8), 4);
    }
}
