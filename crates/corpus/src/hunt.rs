//! The hunt driver: run a fuzzing campaign and persist what it finds.
//!
//! This is the glue between `core::campaign` and the corpus — used by the
//! `ccfuzz hunt` subcommand, the examples and the integration tests.

use crate::finding::{Finding, GenomePayload};
use crate::store::{Corpus, CorpusError, InsertOutcome};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_core::scenario::QdiscChoice;
use ccfuzz_netsim::time::SimDuration;
use ccfuzz_obs::{HuntTelemetry, Phase};

/// Parameters of one hunt.
#[derive(Clone, Debug)]
pub struct HuntConfig {
    /// Algorithm under test (the primary flow's algorithm in fairness mode).
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// Scenario duration per simulation.
    pub duration: SimDuration,
    /// GA parameters.
    pub ga: GaParams,
    /// Per-flow algorithms for fairness mode (ignored in the single-flow
    /// modes). Flow 0 is `cca`.
    pub flow_ccas: Vec<CcaKind>,
    /// Disciplines explored by AQM-mode hunts (ignored elsewhere).
    pub qdisc: QdiscChoice,
    /// Initial hop count for topology-mode hunts (ignored elsewhere).
    pub hops: usize,
}

impl HuntConfig {
    /// A quick-scale hunt (the `ccfuzz` CLI default): paper scenario, quick
    /// GA, `generations` generations, explicit seed. Fairness hunts default
    /// to `cca` vs. Reno.
    pub fn quick(cca: CcaKind, mode: FuzzMode, generations: u32, seed: u64) -> Self {
        let mut ga = GaParams::quick();
        ga.generations = generations.max(1);
        ga.seed = seed;
        let flow_ccas = match mode {
            FuzzMode::Fairness => vec![cca, CcaKind::Reno],
            _ => vec![cca],
        };
        HuntConfig {
            cca,
            mode,
            duration: SimDuration::from_secs(3),
            ga,
            flow_ccas,
            qdisc: QdiscChoice::Any,
            hops: 3,
        }
    }

    /// The campaign this hunt runs.
    pub fn campaign(&self) -> Campaign {
        match self.mode {
            FuzzMode::Fairness => {
                let mut flow_ccas = self.flow_ccas.clone();
                if flow_ccas.is_empty() {
                    flow_ccas.push(self.cca);
                }
                flow_ccas[0] = self.cca;
                if flow_ccas.len() < 2 {
                    flow_ccas.push(CcaKind::Reno);
                }
                Campaign::paper_fairness(flow_ccas, self.duration, self.ga)
            }
            FuzzMode::Aqm => Campaign::paper_aqm(self.cca, self.duration, self.ga, self.qdisc),
            FuzzMode::Topology => {
                Campaign::paper_topology(self.cca, self.hops, self.duration, self.ga)
            }
            _ => Campaign::paper_standard(self.mode, self.cca, self.duration, self.ga),
        }
    }
}

/// Runs the campaign described by `config` and inserts its best trace into
/// `corpus`. Returns the finding (whether or not the corpus kept it) and the
/// insert decision.
pub fn hunt(corpus: &Corpus, config: &HuntConfig) -> Result<(Finding, InsertOutcome), CorpusError> {
    hunt_with(corpus, config, None)
}

/// [`hunt`] with an optional telemetry observer: the campaign streams
/// per-generation snapshots through it and the corpus insert is recorded
/// (accept/dedup counters, corpus-io phase time).
pub fn hunt_with(
    corpus: &Corpus,
    config: &HuntConfig,
    obs: Option<&HuntTelemetry>,
) -> Result<(Finding, InsertOutcome), CorpusError> {
    let campaign = config.campaign();
    let (genome, outcome, evaluations) = match config.mode {
        FuzzMode::Traffic => {
            let result = campaign.run_traffic_with(obs);
            (
                GenomePayload::Traffic(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
        FuzzMode::Link => {
            let result = campaign.run_link_with(obs);
            (
                GenomePayload::Link(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
        FuzzMode::Fairness => {
            let result = campaign.run_fairness_with(obs);
            (
                GenomePayload::Scenario(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
        FuzzMode::Aqm => {
            let result = campaign.run_aqm_with(obs);
            (
                GenomePayload::Scenario(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
        FuzzMode::Topology => {
            let result = campaign.run_topology_with(obs);
            (
                GenomePayload::Topology(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
    };
    let _timer = obs.map(|o| o.profiler.scope(Phase::CorpusIo));
    let finding = Finding::from_campaign(&campaign, genome, outcome, evaluations as u64);
    let decision = corpus.insert(&finding)?;
    if let Some(obs) = obs {
        match decision {
            InsertOutcome::Added | InsertOutcome::ReplacedWeaker { .. } => {
                obs.metrics.corpus_inserted.inc()
            }
            InsertOutcome::DuplicateRejected { .. } | InsertOutcome::BucketFullRejected { .. } => {
                obs.metrics.corpus_deduplicated.inc()
            }
        }
    }
    Ok((finding, decision))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CorpusConfig;

    #[test]
    fn hunt_persists_a_deduplicated_finding() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-hunt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

        let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 2, 11);
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.duration = SimDuration::from_secs(2);

        let (finding, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(decision, InsertOutcome::Added);
        assert_eq!(corpus.get(&finding.id).unwrap(), finding);

        // The same hunt again produces the identical finding (determinism)
        // and is rejected as a duplicate.
        let (again, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(again, finding);
        assert_eq!(
            decision,
            InsertOutcome::DuplicateRejected {
                existing_score: finding.outcome.score
            }
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fairness_hunt_produces_a_scenario_finding_with_per_flow_results() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-fairhunt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

        let mut config = HuntConfig::quick(CcaKind::Bbr, FuzzMode::Fairness, 2, 7);
        config.flow_ccas = vec![CcaKind::Bbr, CcaKind::Reno];
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.duration = SimDuration::from_secs(2);

        let (finding, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(decision, InsertOutcome::Added);
        assert!(finding.id.starts_with("bbr-fairness-"));
        let fairness = finding.fairness.as_ref().expect("per-flow summary");
        assert!(fairness.per_flow_goodput_bps.len() >= 2);
        assert_eq!(
            fairness.per_flow_goodput_bps.len(),
            fairness.per_flow_cca.len()
        );
        assert!((0.0..=1.0).contains(&fairness.jain_index));
        assert!(finding.behavior_digest != 0);
        // Round trip through disk preserves the fairness block.
        assert_eq!(corpus.get(&finding.id).unwrap(), finding);
        let _ = std::fs::remove_dir_all(dir);
    }
}
