//! The hunt driver: run a fuzzing campaign and persist what it finds.
//!
//! This is the glue between `core::campaign` and the corpus — used by the
//! `ccfuzz hunt` subcommand, the examples and the integration tests.

use crate::finding::{Finding, GenomePayload};
use crate::store::{Corpus, CorpusError, InsertOutcome};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::fuzzer::GaParams;
use ccfuzz_netsim::time::SimDuration;

/// Parameters of one hunt.
#[derive(Clone, Debug)]
pub struct HuntConfig {
    /// Algorithm under test.
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// Scenario duration per simulation.
    pub duration: SimDuration,
    /// GA parameters.
    pub ga: GaParams,
}

impl HuntConfig {
    /// A quick-scale hunt (the `ccfuzz` CLI default): paper scenario, quick
    /// GA, `generations` generations, explicit seed.
    pub fn quick(cca: CcaKind, mode: FuzzMode, generations: u32, seed: u64) -> Self {
        let mut ga = GaParams::quick();
        ga.generations = generations.max(1);
        ga.seed = seed;
        HuntConfig {
            cca,
            mode,
            duration: SimDuration::from_secs(3),
            ga,
        }
    }
}

/// Runs the campaign described by `config` and inserts its best trace into
/// `corpus`. Returns the finding (whether or not the corpus kept it) and the
/// insert decision.
pub fn hunt(corpus: &Corpus, config: &HuntConfig) -> Result<(Finding, InsertOutcome), CorpusError> {
    let campaign = Campaign::paper_standard(config.mode, config.cca, config.duration, config.ga);
    let (genome, outcome, evaluations) = match config.mode {
        FuzzMode::Traffic => {
            let result = campaign.run_traffic();
            (
                GenomePayload::Traffic(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
        FuzzMode::Link => {
            let result = campaign.run_link();
            (
                GenomePayload::Link(result.best_genome),
                result.best_outcome,
                result.total_evaluations,
            )
        }
    };
    let finding = Finding::from_campaign(&campaign, genome, outcome, evaluations as u64);
    let decision = corpus.insert(&finding)?;
    Ok((finding, decision))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CorpusConfig;

    #[test]
    fn hunt_persists_a_deduplicated_finding() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-hunt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

        let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 2, 11);
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.duration = SimDuration::from_secs(2);

        let (finding, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(decision, InsertOutcome::Added);
        assert_eq!(corpus.get(&finding.id).unwrap(), finding);

        // The same hunt again produces the identical finding (determinism)
        // and is rejected as a duplicate.
        let (again, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(again, finding);
        assert_eq!(
            decision,
            InsertOutcome::DuplicateRejected {
                existing_score: finding.outcome.score
            }
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
