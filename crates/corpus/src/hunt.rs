//! The hunt driver: run a fuzzing campaign and persist what it finds.
//!
//! This is the glue between `core::campaign` and the corpus — used by the
//! `ccfuzz hunt` subcommand, the examples and the integration tests.

use crate::checkpoint::{
    hunt_config_digest, CampaignCheckpoint, PanicFinding, TelemetryCounters, CHECKPOINT_SCHEMA,
    PANIC_SCHEMA,
};
use crate::finding::{Finding, GenomePayload};
use crate::store::{Corpus, CorpusError, InsertOutcome};
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::checkpoint::{CampaignControl, ControlledRun, SnapshotPayload};
use ccfuzz_core::fuzzer::{FuzzerSnapshot, GaParams, StopReason};
use ccfuzz_core::scenario::QdiscChoice;
use ccfuzz_netsim::time::SimDuration;
use ccfuzz_obs::{HuntTelemetry, Phase};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

/// Parameters of one hunt. Serializable so a campaign checkpoint can embed
/// the exact configuration it must be resumed with.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HuntConfig {
    /// Algorithm under test (the primary flow's algorithm in fairness mode).
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// Scenario duration per simulation.
    pub duration: SimDuration,
    /// GA parameters.
    pub ga: GaParams,
    /// Per-flow algorithms for fairness mode and the CCA pool dynamic
    /// arrivals draw from in workload mode (ignored in the single-flow
    /// modes). Flow 0 is `cca`.
    pub flow_ccas: Vec<CcaKind>,
    /// Disciplines explored by AQM-mode hunts (ignored elsewhere).
    pub qdisc: QdiscChoice,
    /// Initial hop count for topology-mode hunts (ignored elsewhere).
    pub hops: usize,
}

impl HuntConfig {
    /// A quick-scale hunt (the `ccfuzz` CLI default): paper scenario, quick
    /// GA, `generations` generations, explicit seed. Fairness hunts default
    /// to `cca` vs. Reno.
    pub fn quick(cca: CcaKind, mode: FuzzMode, generations: u32, seed: u64) -> Self {
        let mut ga = GaParams::quick();
        ga.generations = generations.max(1);
        ga.seed = seed;
        let flow_ccas = match mode {
            FuzzMode::Fairness | FuzzMode::Workload => vec![cca, CcaKind::Reno],
            _ => vec![cca],
        };
        HuntConfig {
            cca,
            mode,
            duration: SimDuration::from_secs(3),
            ga,
            flow_ccas,
            qdisc: QdiscChoice::Any,
            hops: 3,
        }
    }

    /// The campaign this hunt runs.
    pub fn campaign(&self) -> Campaign {
        match self.mode {
            FuzzMode::Fairness => {
                let mut flow_ccas = self.flow_ccas.clone();
                if flow_ccas.is_empty() {
                    flow_ccas.push(self.cca);
                }
                flow_ccas[0] = self.cca;
                if flow_ccas.len() < 2 {
                    flow_ccas.push(CcaKind::Reno);
                }
                Campaign::paper_fairness(flow_ccas, self.duration, self.ga)
            }
            FuzzMode::Aqm => Campaign::paper_aqm(self.cca, self.duration, self.ga, self.qdisc),
            FuzzMode::Topology => {
                Campaign::paper_topology(self.cca, self.hops, self.duration, self.ga)
            }
            FuzzMode::Workload => {
                let mut pool = self.flow_ccas.clone();
                if pool.is_empty() {
                    pool.push(self.cca);
                }
                Campaign::paper_workload(self.cca, pool, 3, self.duration, self.ga)
            }
            _ => Campaign::paper_standard(self.mode, self.cca, self.duration, self.ga),
        }
    }
}

/// Runs the campaign described by `config` and inserts its best trace into
/// `corpus`. Returns the finding (whether or not the corpus kept it) and the
/// insert decision.
pub fn hunt(corpus: &Corpus, config: &HuntConfig) -> Result<(Finding, InsertOutcome), CorpusError> {
    hunt_with(corpus, config, None)
}

/// [`hunt`] with an optional telemetry observer: the campaign streams
/// per-generation snapshots through it and the corpus insert is recorded
/// (accept/dedup counters, corpus-io phase time).
pub fn hunt_with(
    corpus: &Corpus,
    config: &HuntConfig,
    obs: Option<&HuntTelemetry>,
) -> Result<(Finding, InsertOutcome), CorpusError> {
    match hunt_controlled(corpus, config, obs, HuntControl::default())? {
        HuntOutcome::Completed { finding, decision } => Ok((*finding, decision)),
        other => Err(CorpusError(format!(
            "uncontrolled hunt stopped early: {other:?}"
        ))),
    }
}

/// External control plane for a hunt: cooperative shutdown, periodic
/// checkpointing, panic budget and resume state. The default is a plain
/// run-to-completion hunt with no checkpointing.
#[derive(Default)]
pub struct HuntControl<'c> {
    /// Raising this stops the campaign at the next generation boundary.
    pub shutdown: Option<&'c AtomicBool>,
    /// Where to write checkpoints. `None` disables checkpointing entirely.
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many completed generations (0 = only
    /// the final checkpoint when the run stops).
    pub checkpoint_every: u32,
    /// Caught evaluation panics tolerated before the campaign aborts
    /// (`None` = unlimited).
    pub panic_budget: Option<u64>,
    /// Resume from this checkpoint instead of starting fresh. Its embedded
    /// config must equal the `config` passed to [`hunt_controlled`].
    pub resume: Option<CampaignCheckpoint>,
}

/// How a controlled hunt ended.
#[derive(Clone, Debug)]
pub enum HuntOutcome {
    /// The campaign ran to completion and its best trace was offered to the
    /// corpus.
    Completed {
        /// The best finding (whether or not the corpus kept it). Boxed so
        /// the early-stop variants do not carry a finding-sized payload.
        finding: Box<Finding>,
        /// What the corpus did with it.
        decision: InsertOutcome,
    },
    /// The shutdown flag stopped the campaign at a resumable boundary; the
    /// final checkpoint (if a path was configured) resumes it.
    Interrupted {
        /// Generation the resumed campaign will evaluate next.
        next_generation: u32,
        /// Simulations completed before stopping.
        evaluations: u64,
    },
    /// More evaluation panics were caught than the budget tolerates.
    PanicBudgetExhausted {
        /// Caught panics (each persisted as a panic artifact).
        panics: u64,
        /// Generation the campaign stopped after.
        next_generation: u32,
    },
}

/// [`hunt_with`] plus the crash-safety control plane: periodic + final
/// checkpoints (written atomically), resume, graceful shutdown, panic
/// isolation with persisted panic artifacts.
pub fn hunt_controlled(
    corpus: &Corpus,
    config: &HuntConfig,
    obs: Option<&HuntTelemetry>,
    ctl: HuntControl<'_>,
) -> Result<HuntOutcome, CorpusError> {
    let campaign = config.campaign();
    match config.mode {
        FuzzMode::Traffic => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_traffic_controlled(obs, cc),
            SnapshotPayload::Traffic,
            GenomePayload::Traffic,
        ),
        FuzzMode::Link => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_link_controlled(obs, cc),
            SnapshotPayload::Link,
            GenomePayload::Link,
        ),
        FuzzMode::Fairness => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_fairness_controlled(obs, cc),
            SnapshotPayload::Scenario,
            GenomePayload::Scenario,
        ),
        FuzzMode::Aqm => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_aqm_controlled(obs, cc),
            SnapshotPayload::Scenario,
            GenomePayload::Scenario,
        ),
        FuzzMode::Topology => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_topology_controlled(obs, cc),
            SnapshotPayload::Topology,
            GenomePayload::Topology,
        ),
        FuzzMode::Workload => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |c, cc| c.run_workload_controlled(obs, cc),
            SnapshotPayload::Workload,
            GenomePayload::Workload,
        ),
    }
}

/// The mode-generic half of [`hunt_controlled`]: runs the campaign under
/// control, persists checkpoints and panic artifacts, and (on completion)
/// inserts the best finding.
///
/// Crate-visible so the distributed driver (`crate::daemon`) can reuse the
/// exact persistence path — same panic artifacts, same final checkpoint,
/// same finding construction — with its fleet run plugged in as `run`.
/// That shared tail is what makes a daemon hunt's payload byte-identical
/// to `ccfuzz hunt`'s.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<G, RunFn>(
    corpus: &Corpus,
    config: &HuntConfig,
    campaign: &Campaign,
    obs: Option<&HuntTelemetry>,
    ctl: HuntControl<'_>,
    run: RunFn,
    wrap_snapshot: fn(FuzzerSnapshot<G>) -> SnapshotPayload,
    wrap_genome: fn(G) -> GenomePayload,
) -> Result<HuntOutcome, CorpusError>
where
    G: Clone,
    RunFn: FnOnce(&Campaign, CampaignControl<'_>) -> Result<ControlledRun<G>, String>,
{
    let HuntControl {
        shutdown,
        checkpoint_path,
        checkpoint_every,
        panic_budget,
        resume,
    } = ctl;

    // Resume: unwrap the stored fuzzer state and re-seed telemetry totals
    // so counters continue the interrupted campaign's counts.
    let resume_state = match resume {
        Some(ck) => {
            if &ck.config != config {
                return Err(CorpusError(
                    "resume checkpoint was recorded for a different hunt configuration".into(),
                ));
            }
            if let Some(o) = obs {
                o.metrics.restore_counts(
                    ck.telemetry.evaluations,
                    &ck.telemetry.operators,
                    ck.telemetry.panics_caught,
                    ck.telemetry.corpus_inserted,
                    ck.telemetry.corpus_deduplicated,
                );
                o.metrics
                    .checkpoints_written
                    .add(ck.telemetry.checkpoints_written);
                o.metrics
                    .checkpoint_bytes
                    .add(ck.telemetry.checkpoint_bytes);
            }
            Some(ck.state)
        }
        None => None,
    };

    let corpus_dir = corpus.root().display().to_string();
    let persist = |state: SnapshotPayload, completed: bool| -> Result<(), CorpusError> {
        let Some(path) = checkpoint_path.as_deref() else {
            return Ok(());
        };
        let telemetry = TelemetryCounters {
            evaluations: state.evaluations() as u64,
            operators: obs
                .map(|o| o.metrics.operator_snapshot())
                .unwrap_or_default(),
            panics_caught: state.panics_caught(),
            checkpoints_written: obs
                .map(|o| o.metrics.checkpoints_written.get() + 1)
                .unwrap_or(0),
            checkpoint_bytes: obs.map(|o| o.metrics.checkpoint_bytes.get()).unwrap_or(0),
            corpus_inserted: obs.map(|o| o.metrics.corpus_inserted.get()).unwrap_or(0),
            corpus_deduplicated: obs
                .map(|o| o.metrics.corpus_deduplicated.get())
                .unwrap_or(0),
        };
        let ck = CampaignCheckpoint {
            schema: CHECKPOINT_SCHEMA,
            config: config.clone(),
            config_digest: hunt_config_digest(config),
            corpus_dir: corpus_dir.clone(),
            checkpoint_every,
            panic_budget,
            completed,
            telemetry,
            state,
        };
        let bytes = ck.write_atomic(path)?;
        if let Some(o) = obs {
            o.metrics.checkpoints_written.inc();
            o.metrics.checkpoint_bytes.add(bytes);
        }
        Ok(())
    };

    // The fuzzer's checkpoint callback cannot return an error, so the first
    // write failure is parked here and surfaced after the run.
    let mut write_error: Option<CorpusError> = None;
    let mut on_checkpoint = |state: SnapshotPayload| {
        if write_error.is_none() {
            if let Err(e) = persist(state, false) {
                write_error = Some(e);
            }
        }
    };
    let control = CampaignControl {
        shutdown,
        checkpoint_every: if checkpoint_path.is_some() {
            checkpoint_every
        } else {
            0
        },
        on_checkpoint: if checkpoint_path.is_some() && checkpoint_every > 0 {
            Some(&mut on_checkpoint)
        } else {
            None
        },
        panic_budget,
        resume: resume_state,
    };
    let out = run(campaign, control).map_err(CorpusError)?;
    if let Some(e) = write_error {
        return Err(e);
    }
    let ControlledRun {
        result,
        stop,
        final_snapshot,
    } = out;

    // Persist panic artifacts. Ordinals are positions in the cumulative
    // panic log (which survives checkpoints), so re-persisting after a
    // resume rewrites the same files with the same content.
    if !final_snapshot.panics.is_empty() {
        let dir = corpus.root().join("panics");
        for (pos, record) in final_snapshot.panics.iter().enumerate() {
            PanicFinding {
                schema: PANIC_SCHEMA,
                ordinal: pos as u64 + 1,
                cca: config.cca,
                mode: config.mode,
                generation: record.generation,
                island: record.island,
                index: record.index,
                message: record.message.clone(),
                genome: wrap_genome(record.genome.clone()),
            }
            .write_into(&dir)?;
        }
    }

    // The final checkpoint is written on EVERY stop — completion included —
    // so a crash at any later point (even during the corpus insert below)
    // resumes to an identical end state.
    let panics = final_snapshot.panics.len() as u64;
    let next_generation = final_snapshot.next_generation;
    let evaluations = final_snapshot.evaluations as u64;
    persist(wrap_snapshot(final_snapshot), stop == StopReason::Completed)?;

    match stop {
        StopReason::Completed => {
            let _timer = obs.map(|o| o.profiler.scope(Phase::CorpusIo));
            let finding = Finding::from_campaign(
                campaign,
                wrap_genome(result.best_genome),
                result.best_outcome,
                result.total_evaluations as u64,
            );
            let decision = corpus.insert(&finding)?;
            if let Some(obs) = obs {
                match decision {
                    InsertOutcome::Added | InsertOutcome::ReplacedWeaker { .. } => {
                        obs.metrics.corpus_inserted.inc()
                    }
                    InsertOutcome::DuplicateRejected { .. }
                    | InsertOutcome::BucketFullRejected { .. } => {
                        obs.metrics.corpus_deduplicated.inc()
                    }
                }
            }
            Ok(HuntOutcome::Completed {
                finding: Box::new(finding),
                decision,
            })
        }
        StopReason::Interrupted => Ok(HuntOutcome::Interrupted {
            next_generation,
            evaluations,
        }),
        StopReason::PanicBudgetExhausted => Ok(HuntOutcome::PanicBudgetExhausted {
            panics,
            next_generation,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CorpusConfig;

    #[test]
    fn hunt_persists_a_deduplicated_finding() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-hunt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

        let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 2, 11);
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.duration = SimDuration::from_secs(2);

        let (finding, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(decision, InsertOutcome::Added);
        assert_eq!(corpus.get(&finding.id).unwrap(), finding);

        // The same hunt again produces the identical finding (determinism)
        // and is rejected as a duplicate.
        let (again, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(again, finding);
        assert_eq!(
            decision,
            InsertOutcome::DuplicateRejected {
                existing_score: finding.outcome.score
            }
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fairness_hunt_produces_a_scenario_finding_with_per_flow_results() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-fairhunt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

        let mut config = HuntConfig::quick(CcaKind::Bbr, FuzzMode::Fairness, 2, 7);
        config.flow_ccas = vec![CcaKind::Bbr, CcaKind::Reno];
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.duration = SimDuration::from_secs(2);

        let (finding, decision) = hunt(&corpus, &config).unwrap();
        assert_eq!(decision, InsertOutcome::Added);
        assert!(finding.id.starts_with("bbr-fairness-"));
        let fairness = finding.fairness.as_ref().expect("per-flow summary");
        assert!(fairness.per_flow_goodput_bps.len() >= 2);
        assert_eq!(
            fairness.per_flow_goodput_bps.len(),
            fairness.per_flow_cca.len()
        );
        assert!((0.0..=1.0).contains(&fairness.jain_index));
        assert!(finding.behavior_digest != 0);
        // Round trip through disk preserves the fairness block.
        assert_eq!(corpus.get(&finding.id).unwrap(), finding);
        let _ = std::fs::remove_dir_all(dir);
    }
}
