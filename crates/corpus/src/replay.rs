//! Deterministic regression replay.
//!
//! Replaying a corpus re-runs every stored finding through a fresh
//! simulation and compares the new score against the stored one. Because
//! simulations are pure functions of (config, trace, seed), drift is exactly
//! zero unless the simulator or a CCA changed behaviour — which makes the
//! replay report a regression oracle: commit the corpus, and any future
//! change that alters what these traces do to the CCAs shows up as non-zero
//! drift.
//!
//! The text report is byte-identical across runs: fixed-precision numbers,
//! stable ordering (findings sorted by id), no timestamps.

use crate::finding::Finding;
use crate::store::{Corpus, CorpusError};
use ccfuzz_analysis::table::text_table;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::FuzzMode;
use serde::{Deserialize, Serialize};

/// One finding's replay result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayEntry {
    /// Finding id.
    pub id: String,
    /// CCA the replay ran against (differs from the finding's CCA when an
    /// override is used).
    pub cca: String,
    /// Fuzzing mode.
    pub mode: String,
    /// Packets in the stored genome.
    pub packets: u64,
    /// Score recorded in the corpus.
    pub stored_score: f64,
    /// Score measured by this replay.
    pub replayed_score: f64,
    /// `replayed - stored`.
    pub drift: f64,
    /// Replay goodput in bits per second.
    pub replayed_goodput_bps: f64,
    /// Behaviour digest of the replay run (determinism fingerprint).
    pub digest: u64,
    /// Whether the replay digest matches the stored one. `None` when the
    /// replay ran against a different CCA (the stored digest does not apply).
    pub digest_match: Option<bool>,
}

/// A full corpus replay.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Per-finding results, sorted by finding id.
    pub entries: Vec<ReplayEntry>,
    /// Largest absolute drift across the corpus.
    pub max_abs_drift: f64,
}

fn mode_name(mode: FuzzMode) -> &'static str {
    mode.name()
}

/// Replays a set of findings, optionally forcing a different CCA.
pub fn replay_findings(findings: &[Finding], cca_override: Option<CcaKind>) -> ReplayReport {
    let mut entries: Vec<ReplayEntry> = findings
        .iter()
        .map(|finding| {
            // One simulation yields both the scored outcome and the digest.
            let (outcome, digest) = finding.replay_run(cca_override);
            let digest_match = match cca_override {
                None => Some(digest == finding.behavior_digest),
                Some(_) => None,
            };
            let cca = cca_override.unwrap_or(finding.cca);
            ReplayEntry {
                id: finding.id.clone(),
                cca: cca.name().to_string(),
                mode: mode_name(finding.mode).to_string(),
                packets: finding.genome.packet_count() as u64,
                stored_score: finding.outcome.score,
                replayed_score: outcome.score,
                drift: outcome.score - finding.outcome.score,
                replayed_goodput_bps: outcome.goodput_bps,
                digest,
                digest_match,
            }
        })
        .collect();
    entries.sort_by(|a, b| a.id.cmp(&b.id));
    let max_abs_drift = entries.iter().map(|e| e.drift.abs()).fold(0.0, f64::max);
    ReplayReport {
        entries,
        max_abs_drift,
    }
}

/// Loads and replays an entire corpus.
pub fn replay_corpus(
    corpus: &Corpus,
    cca_override: Option<CcaKind>,
) -> Result<ReplayReport, CorpusError> {
    Ok(replay_findings(&corpus.load_all()?, cca_override))
}

impl ReplayReport {
    /// `true` when every replay reproduced its stored score exactly and
    /// (where applicable) its behaviour digest.
    pub fn is_clean(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.drift == 0.0 && e.digest_match != Some(false))
    }

    /// Renders the deterministic text report.
    pub fn to_text(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.id.clone(),
                    e.cca.clone(),
                    e.mode.clone(),
                    e.packets.to_string(),
                    format!("{:.6}", e.stored_score),
                    format!("{:.6}", e.replayed_score),
                    format!("{:+.6}", e.drift),
                    format!("{:.3}", e.replayed_goodput_bps / 1e6),
                    format!("{:016x}", e.digest),
                    match e.digest_match {
                        Some(true) => "ok".to_string(),
                        Some(false) => "MISMATCH".to_string(),
                        None => "n/a".to_string(),
                    },
                ]
            })
            .collect();
        let mut out = text_table(
            &[
                "finding",
                "cca",
                "mode",
                "pkts",
                "stored",
                "replayed",
                "drift",
                "mbps",
                "digest",
                "determinism",
            ],
            &rows,
        );
        out.push_str(&format!(
            "{} finding(s), max |drift| = {:.6} -> {}\n",
            self.entries.len(),
            self.max_abs_drift,
            if self.is_clean() {
                "CLEAN"
            } else {
                "DRIFT DETECTED"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::{Finding, GenomePayload};
    use ccfuzz_core::campaign::Campaign;
    use ccfuzz_core::fuzzer::GaParams;
    use ccfuzz_netsim::time::SimDuration;

    fn quick_finding() -> Finding {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        let campaign = Campaign::paper_standard(
            FuzzMode::Traffic,
            CcaKind::Reno,
            SimDuration::from_secs(2),
            ga,
        );
        let result = campaign.run_traffic();
        Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        )
    }

    #[test]
    fn replay_of_fresh_finding_is_clean_and_deterministic() {
        let finding = quick_finding();
        let a = replay_findings(std::slice::from_ref(&finding), None);
        assert!(a.is_clean(), "{}", a.to_text());
        assert_eq!(a.max_abs_drift, 0.0);
        // Byte-identical report across runs.
        let b = replay_findings(std::slice::from_ref(&finding), None);
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.entries[0].digest, b.entries[0].digest);
    }

    #[test]
    fn replay_against_other_cca_reports_that_cca() {
        let finding = quick_finding();
        let report = replay_findings(std::slice::from_ref(&finding), Some(CcaKind::Vegas));
        assert_eq!(report.entries[0].cca, "vegas");
        // Cross-CCA replay generally drifts; the report must reflect it
        // either way without panicking.
        assert!(report.entries[0].replayed_score.is_finite());
    }

    #[test]
    fn tampered_score_shows_drift() {
        let mut finding = quick_finding();
        finding.outcome.score += 0.25;
        let report = replay_findings(std::slice::from_ref(&finding), None);
        assert!(!report.is_clean());
        assert!((report.max_abs_drift - 0.25).abs() < 1e-12);
        assert!(report.to_text().contains("DRIFT DETECTED"));
    }
}
