//! The distributed-hunt coordinator and the `ccfuzzd` daemon.
//!
//! Two layers live here:
//!
//! * [`hunt_distributed`] — the multi-process twin of
//!   [`crate::hunt::hunt_controlled`]: it shards the campaign's islands
//!   across worker processes (`ccfuzzd worker` children speaking the
//!   [`crate::proto`] frame protocol), supervises them (a dead worker
//!   respawns the whole fleet from the last *committed* checkpoint
//!   boundary, with backoff, restarts counting against the panic budget)
//!   and funnels the result through the same persistence tail as a local
//!   hunt — so a completed distributed hunt emits the byte-identical
//!   finding payload.
//! * [`serve`] — the daemon: a minimal hand-rolled HTTP/1.1 endpoint to
//!   submit hunts, poll status, stream per-generation telemetry JSONL and
//!   fetch finished findings, plus a runner thread that executes queued
//!   hunts one at a time and merges each finished hunt's corpus into the
//!   shared fleet corpus.
//!
//! Determinism: the coordinator is the only actor that decides when a
//! generation is evaluated, when the migration ring runs (batches are
//! routed in canonical island order) and when the campaign stops, so a
//! fixed worker count replays a fixed trajectory. Non-annealed campaigns
//! further match the single-process trajectory for *any* worker count
//! (see `ccfuzz_core::shard`); annealed ones match it at one worker.
//!
//! Checkpoint commits are two-phase: workers persist their boundary
//! snapshots and acknowledge, and only when *every* worker has acknowledged
//! does the coordinator commit the boundary (keeping a clone of its own
//! cross-island state alongside). A crash between those steps rolls the
//! fleet back to the previous committed boundary — never to a torn mix.

use crate::hunt::{drive, HuntConfig, HuntControl, HuntOutcome};
use crate::proto::{
    decode, recv_frame, send_frame, Assign, CheckpointDone, Evaluate, Fatal, Finish, Hello,
    Proceed, ASSIGN, CHECKPOINT_DONE, EVALUATE, FATAL, FINAL, FINISH, HELLO, INBOUND, MIGRANTS,
    PROCEED, REPORT,
};
use crate::store::{Corpus, CorpusError};
use ccfuzz_core::campaign::FuzzMode;
use ccfuzz_core::checkpoint::{CampaignControl, ControlledRun, SnapshotPayload};
use ccfuzz_core::fuzzer::{FuzzerSnapshot, StopReason};
use ccfuzz_core::genome::{Genome, LinkGenome, TrafficGenome};
use ccfuzz_core::scenario::ScenarioGenome;
use ccfuzz_core::shard::{shard_ranges, MigrantBatch, ShardCoordinator, ShardReport};
use ccfuzz_core::topology::TopologyGenome;
use ccfuzz_core::workload::WorkloadGenome;
use ccfuzz_obs::{
    write_atomic, FleetTelemetry, HuntTelemetry, OperatorSnapshot, WorkerLaneSnapshot,
};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::finding::GenomePayload;

/// Hard cap on fleet respawns when no panic budget bounds them; a
/// systematically-crashing worker binary must not loop forever.
const MAX_UNBUDGETED_RESTARTS: u64 = 32;

/// How long the coordinator waits for all workers to connect and say hello.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Distributed coordinator
// ---------------------------------------------------------------------------

/// Options steering a distributed hunt, alongside the usual
/// [`HuntControl`].
pub struct DistOptions<'a> {
    /// Worker processes to shard the islands across (clamped to the island
    /// count).
    pub workers: usize,
    /// Worker-checkpoint cadence in generations (0 = never; the fleet then
    /// always restarts from scratch after a death).
    pub checkpoint_every: u32,
    /// The binary to spawn workers from (must understand
    /// `worker --connect ADDR --worker K`; the `ccfuzzd` binary does).
    pub exe: &'a Path,
    /// Directory for worker checkpoint files.
    pub worker_dir: &'a Path,
    /// Per-worker fleet counters to record into, if any.
    pub fleet: Option<&'a FleetTelemetry>,
    /// Called after every absorbed generation and after every (re)spawn.
    pub on_progress: Option<&'a (dyn Fn(DistProgress) + Sync)>,
}

/// One progress observation from the coordinator.
#[derive(Clone, Debug, Default)]
pub struct DistProgress {
    /// Latest generation absorbed (meaningful when `evaluations > 0`).
    pub generation: u32,
    /// Fleet-wide simulations absorbed so far this run attempt.
    pub evaluations: u64,
    /// Best score so far, if anything was evaluated.
    pub best_score: Option<f64>,
    /// Fleet respawns so far.
    pub restarts: u64,
    /// Current worker process IDs, when the fleet was just (re)spawned.
    pub worker_pids: Option<Vec<u32>>,
}

/// [`crate::hunt::hunt_controlled`], but the campaign runs sharded across
/// worker processes. Same outcomes, same persistence, same payload bytes on
/// completion. Resuming from a [`crate::checkpoint::CampaignCheckpoint`]
/// is not supported here — resume interrupted distributed hunts by
/// submitting them again (the daemon keeps hunts independent) or resume
/// the final checkpoint single-process with `ccfuzz resume`.
pub fn hunt_distributed(
    corpus: &Corpus,
    config: &HuntConfig,
    obs: Option<&HuntTelemetry>,
    ctl: HuntControl<'_>,
    dist: &DistOptions<'_>,
) -> Result<HuntOutcome, CorpusError> {
    let campaign = config.campaign();
    match config.mode {
        FuzzMode::Traffic => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| {
                run_fleet::<TrafficGenome>(config, cc, obs, dist, SnapshotPayload::into_traffic)
            },
            SnapshotPayload::Traffic,
            GenomePayload::Traffic,
        ),
        FuzzMode::Link => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| run_fleet::<LinkGenome>(config, cc, obs, dist, SnapshotPayload::into_link),
            SnapshotPayload::Link,
            GenomePayload::Link,
        ),
        FuzzMode::Fairness => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| {
                run_fleet::<ScenarioGenome>(config, cc, obs, dist, SnapshotPayload::into_scenario)
            },
            SnapshotPayload::Scenario,
            GenomePayload::Scenario,
        ),
        FuzzMode::Aqm => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| {
                run_fleet::<ScenarioGenome>(config, cc, obs, dist, SnapshotPayload::into_scenario)
            },
            SnapshotPayload::Scenario,
            GenomePayload::Scenario,
        ),
        FuzzMode::Topology => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| {
                run_fleet::<TopologyGenome>(config, cc, obs, dist, SnapshotPayload::into_topology)
            },
            SnapshotPayload::Topology,
            GenomePayload::Topology,
        ),
        FuzzMode::Workload => drive(
            corpus,
            config,
            &campaign,
            obs,
            ctl,
            |_, cc| {
                run_fleet::<WorkloadGenome>(config, cc, obs, dist, SnapshotPayload::into_workload)
            },
            SnapshotPayload::Workload,
            GenomePayload::Workload,
        ),
    }
}

/// A worker process plus its coordinator-side socket.
struct FleetLink {
    child: Child,
    stream: TcpStream,
}

struct Fleet {
    links: Vec<FleetLink>,
}

impl Fleet {
    fn pids(&self) -> Vec<u32> {
        self.links.iter().map(|l| l.child.id()).collect()
    }

    /// Hard-stops every worker (used on death or hard failure).
    fn kill(&mut self) {
        for link in &mut self.links {
            let _ = link.child.kill();
            let _ = link.child.wait();
        }
    }

    /// Reaps workers that were told to finish and exit on their own.
    fn reap(&mut self) {
        for link in &mut self.links {
            let _ = link.child.wait();
        }
    }
}

/// How one fleet run attempt ended, when it did not produce a result.
enum FleetError {
    /// A worker died (EOF / IO error); the supervisor respawns the fleet.
    Death(String),
    /// A protocol or logic error; respawning cannot help.
    Fatal(String),
}

/// The supervision loop: (re)spawn the fleet, drive it, and on worker
/// death roll back to the last committed boundary and try again.
fn run_fleet<G>(
    config: &HuntConfig,
    control: CampaignControl<'_>,
    obs: Option<&HuntTelemetry>,
    dist: &DistOptions<'_>,
    unwrap: fn(SnapshotPayload) -> Result<FuzzerSnapshot<G>, String>,
) -> Result<ControlledRun<G>, String>
where
    G: Genome + Serialize + Deserialize,
{
    if control.resume.is_some() {
        return Err(
            "resuming a checkpointed campaign across a distributed fleet is not supported; \
             resume it single-process with `ccfuzz resume`"
                .into(),
        );
    }
    let ranges = shard_ranges(config.ga.islands, dist.workers.max(1));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding coordinator socket: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring coordinator socket: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("resolving coordinator socket: {e}"))?
        .to_string();

    let mut committed: Option<(u32, ShardCoordinator<G>)> = None;
    let mut restarts: u64 = 0;
    loop {
        let mut coordinator = match &committed {
            Some((_, state)) => state.clone(),
            None => ShardCoordinator::new(config.ga),
        };
        let resume_generation = committed.as_ref().map(|(g, _)| *g);
        let attempt = spawn_fleet(&listener, &addr, &ranges, config, dist, resume_generation)
            .map_err(FleetError::Death)
            .and_then(|mut fleet| {
                if let Some(progress) = dist.on_progress {
                    progress(DistProgress {
                        restarts,
                        worker_pids: Some(fleet.pids()),
                        ..DistProgress::default()
                    });
                }
                let run = drive_fleet(
                    &mut fleet,
                    &mut coordinator,
                    &ranges,
                    config,
                    &control,
                    obs,
                    dist,
                    restarts,
                    &mut committed,
                    unwrap,
                );
                match &run {
                    Ok(_) => fleet.reap(),
                    Err(_) => fleet.kill(),
                }
                run
            });
        match attempt {
            Ok(run) => return Ok(run),
            Err(FleetError::Fatal(message)) => return Err(message),
            Err(FleetError::Death(message)) => {
                restarts += 1;
                if let Some(fleet) = dist.fleet {
                    // Without knowing which worker died first, charge lane 0;
                    // the fleet restarts as a whole anyway.
                    fleet.lane(0).restarts.inc();
                }
                // Restarts count against the panic budget. When a committed
                // boundary exists, an exhausted budget still respawns once
                // more: the boundary check then stops the resumed fleet
                // gracefully with `PanicBudgetExhausted` and a valid final
                // snapshot. With nothing committed there is no result to
                // assemble, so the hunt fails hard.
                let exhausted_with_nothing_committed = match control.panic_budget {
                    Some(budget) => restarts > budget && committed.is_none(),
                    None => restarts > MAX_UNBUDGETED_RESTARTS,
                };
                if exhausted_with_nothing_committed {
                    return Err(format!(
                        "giving up after {restarts} fleet restarts (last: {message})"
                    ));
                }
                let backoff = Duration::from_millis(100 << restarts.min(4));
                eprintln!(
                    "ccfuzzd: fleet died ({message}); respawning from {} in {backoff:?} \
                     (restart {restarts})",
                    match resume_generation {
                        Some(g) => format!("committed generation {g}"),
                        None => "scratch".to_string(),
                    }
                );
                std::thread::sleep(backoff);
            }
        }
    }
}

/// Spawns the worker processes and completes the hello/assign handshake.
fn spawn_fleet(
    listener: &TcpListener,
    addr: &str,
    ranges: &[(usize, usize)],
    config: &HuntConfig,
    dist: &DistOptions<'_>,
    resume_generation: Option<u32>,
) -> Result<Fleet, String> {
    let n = ranges.len();
    let mut children: Vec<Child> = Vec::with_capacity(n);
    for worker in 0..n {
        let child = Command::new(dist.exe)
            .arg("worker")
            .arg("--connect")
            .arg(addr)
            .arg("--worker")
            .arg(worker.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| {
                for c in &mut children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                format!("spawning worker {worker} from {}: {e}", dist.exe.display())
            })?;
        children.push(child);
    }
    let kill_all = |children: &mut Vec<Child>| {
        for c in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
    };

    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut pending = n;
    while pending > 0 {
        if Instant::now() > deadline {
            kill_all(&mut children);
            return Err("fleet handshake timed out".into());
        }
        for child in &mut children {
            if let Ok(Some(status)) = child.try_wait() {
                kill_all(&mut children);
                return Err(format!("a worker exited during handshake: {status}"));
            }
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let hello = (|| -> Result<Hello, String> {
                    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .map_err(|e| e.to_string())?;
                    let (kind, body) = recv_frame(&mut stream).map_err(|e| e.to_string())?;
                    if kind != HELLO {
                        return Err(format!("expected `{HELLO}`, got `{kind}`"));
                    }
                    stream.set_read_timeout(None).map_err(|e| e.to_string())?;
                    decode(&kind, &body)
                })();
                match hello {
                    Ok(Hello { worker }) if worker < n && slots[worker].is_none() => {
                        slots[worker] = Some(stream);
                        pending -= 1;
                    }
                    Ok(Hello { worker }) => {
                        kill_all(&mut children);
                        return Err(format!("unexpected hello from worker {worker}"));
                    }
                    Err(e) => {
                        kill_all(&mut children);
                        return Err(format!("handshake failed: {e}"));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(format!("accepting worker connection: {e}"));
            }
        }
    }

    let mut links = Vec::with_capacity(n);
    for (worker, (child, stream)) in children.into_iter().zip(slots).enumerate() {
        let mut stream = stream.expect("every slot was filled");
        let (island_start, island_end) = ranges[worker];
        let assign = Assign {
            config: config.clone(),
            worker,
            n_workers: n,
            island_start,
            island_end,
            checkpoint_every: dist.checkpoint_every,
            checkpoint_dir: dist.worker_dir.display().to_string(),
            resume_generation,
        };
        if let Err(e) = send_frame(&mut stream, ASSIGN, &assign) {
            let mut fleet = Fleet { links };
            fleet.kill();
            let _ = child;
            return Err(format!("assigning worker {worker}: {e}"));
        }
        links.push(FleetLink { child, stream });
    }
    Ok(Fleet { links })
}

/// Receives one frame from a worker, expecting `want`. EOF/IO errors are
/// deaths; `fatal` frames and protocol violations are hard failures.
fn expect_frame<T: Deserialize>(
    link: &mut FleetLink,
    worker: usize,
    want: &str,
) -> Result<T, FleetError> {
    let (kind, body) = recv_frame(&mut link.stream)
        .map_err(|e| FleetError::Death(format!("worker {worker} link: {e}")))?;
    if kind == FATAL {
        let fatal: Fatal = decode(&kind, &body).unwrap_or(Fatal {
            message: "unreadable fatal frame".into(),
        });
        return Err(FleetError::Fatal(format!(
            "worker {worker} failed: {}",
            fatal.message
        )));
    }
    if kind != want {
        return Err(FleetError::Fatal(format!(
            "expected `{want}` from worker {worker}, got `{kind}`"
        )));
    }
    decode(&kind, &body).map_err(FleetError::Fatal)
}

/// Drives one spawned fleet until the campaign stops or a worker dies.
/// Mirrors `Fuzzer::run_controlled`'s boundary order exactly: evaluate →
/// absorb (select/summary/stall/last-generation) → evolve + migrate →
/// checkpoint → shutdown check → panic-budget check.
#[allow(clippy::too_many_arguments)]
fn drive_fleet<G>(
    fleet: &mut Fleet,
    coordinator: &mut ShardCoordinator<G>,
    ranges: &[(usize, usize)],
    config: &HuntConfig,
    control: &CampaignControl<'_>,
    obs: Option<&HuntTelemetry>,
    dist: &DistOptions<'_>,
    restarts: u64,
    committed: &mut Option<(u32, ShardCoordinator<G>)>,
    unwrap: fn(SnapshotPayload) -> Result<FuzzerSnapshot<G>, String>,
) -> Result<ControlledRun<G>, FleetError>
where
    G: Genome + Serialize + Deserialize,
{
    let islands = config.ga.islands;
    // Workers report cumulative operator counters; the coordinator feeds
    // the per-generation diffs into the hunt telemetry.
    let mut last_operators = vec![OperatorSnapshot::default(); ranges.len()];
    loop {
        let generation = coordinator.next_generation();
        // Boundary checks, in the single-process order (shutdown first,
        // then budget). They only fire once at least one generation ran —
        // the same invariant `run_controlled` holds by construction.
        if !coordinator.history().is_empty() {
            if generation >= config.ga.generations {
                return finish_fleet(fleet, coordinator, ranges, StopReason::Completed, unwrap);
            }
            if let Some(flag) = control.shutdown {
                if flag.load(Ordering::SeqCst) {
                    return finish_fleet(
                        fleet,
                        coordinator,
                        ranges,
                        StopReason::Interrupted,
                        unwrap,
                    );
                }
            }
            if let Some(budget) = control.panic_budget {
                if coordinator.panic_count() as u64 + restarts > budget {
                    return finish_fleet(
                        fleet,
                        coordinator,
                        ranges,
                        StopReason::PanicBudgetExhausted,
                        unwrap,
                    );
                }
            }
        }

        for (worker, link) in fleet.links.iter_mut().enumerate() {
            send_frame(&mut link.stream, EVALUATE, &Evaluate { generation })
                .map_err(|e| FleetError::Death(format!("worker {worker} link: {e}")))?;
        }
        let mut reports: Vec<ShardReport<G>> = Vec::with_capacity(fleet.links.len());
        for (worker, link) in fleet.links.iter_mut().enumerate() {
            reports.push(expect_frame(link, worker, REPORT)?);
        }

        for (worker, report) in reports.iter().enumerate() {
            if let Some(fleet_t) = dist.fleet {
                fleet_t
                    .lane(worker)
                    .evaluations
                    .add(report.eval_delta as u64);
                fleet_t.lane(worker).panics.add(report.panics.len() as u64);
            }
            if let Some(o) = obs {
                o.metrics.evaluations.add(report.eval_delta as u64);
                o.metrics.panics_caught.add(report.panics.len() as u64);
                let last = &last_operators[worker];
                let ops = &report.operators;
                o.metrics
                    .operators
                    .elite
                    .add(ops.elite.saturating_sub(last.elite));
                o.metrics
                    .operators
                    .crossover
                    .add(ops.crossover.saturating_sub(last.crossover));
                o.metrics
                    .operators
                    .mutation
                    .add(ops.mutation.saturating_sub(last.mutation));
                o.metrics
                    .operators
                    .anneal
                    .add(ops.anneal.saturating_sub(last.anneal));
                o.metrics
                    .operators
                    .migrant
                    .add(ops.migrant.saturating_sub(last.migrant));
            }
            last_operators[worker] = report.operators;
        }

        let absorbed = coordinator
            .absorb_reports(&reports)
            .map_err(FleetError::Fatal)?;
        if let Some(o) = obs {
            o.observe_generation(
                generation,
                coordinator.best_score().unwrap_or(0.0),
                absorbed.summary.mean_score,
                absorbed.island_best.clone(),
            );
        }
        if let Some(progress) = dist.on_progress {
            progress(DistProgress {
                generation,
                evaluations: coordinator.evaluations() as u64,
                best_score: coordinator.best_score(),
                restarts,
                worker_pids: None,
            });
        }

        match absorbed.next {
            ccfuzz_core::shard::GenerationOutcome::Completed => {
                return finish_fleet(fleet, coordinator, ranges, StopReason::Completed, unwrap);
            }
            ccfuzz_core::shard::GenerationOutcome::Evolve { migrate } => {
                let boundary = generation + 1;
                let checkpoint =
                    dist.checkpoint_every > 0 && boundary.is_multiple_of(dist.checkpoint_every);
                for (worker, link) in fleet.links.iter_mut().enumerate() {
                    send_frame(
                        &mut link.stream,
                        PROCEED,
                        &Proceed {
                            generation,
                            migrate,
                            checkpoint,
                        },
                    )
                    .map_err(|e| FleetError::Death(format!("worker {worker} link: {e}")))?;
                }
                if migrate {
                    // Collecting in worker order yields batches in global
                    // island order — the canonical exchange sequence.
                    let mut outbound: Vec<MigrantBatch<G>> = Vec::new();
                    for (worker, link) in fleet.links.iter_mut().enumerate() {
                        let batches: Vec<MigrantBatch<G>> = expect_frame(link, worker, MIGRANTS)?;
                        if let Some(fleet_t) = dist.fleet {
                            let count: usize = batches.iter().map(|b| b.migrants.len()).sum();
                            fleet_t.lane(worker).migrants_out.add(count as u64);
                        }
                        outbound.extend(batches);
                    }
                    let mut inbound: Vec<Vec<MigrantBatch<G>>> =
                        ranges.iter().map(|_| Vec::new()).collect();
                    for batch in outbound {
                        let dst = (batch.src_island + 1) % islands;
                        let owner = ranges
                            .iter()
                            .position(|&(s, e)| dst >= s && dst < e)
                            .expect("every island has an owner");
                        inbound[owner].push(batch);
                    }
                    for ((worker, link), batches) in fleet.links.iter_mut().enumerate().zip(inbound)
                    {
                        send_frame(&mut link.stream, INBOUND, &batches)
                            .map_err(|e| FleetError::Death(format!("worker {worker} link: {e}")))?;
                    }
                }
                if checkpoint {
                    for (worker, link) in fleet.links.iter_mut().enumerate() {
                        let done: CheckpointDone = expect_frame(link, worker, CHECKPOINT_DONE)?;
                        if done.generation != boundary {
                            return Err(FleetError::Fatal(format!(
                                "worker {worker} checkpointed boundary {} instead of {boundary}",
                                done.generation
                            )));
                        }
                    }
                    coordinator.finish_generation();
                    // Two-phase commit: every worker has durably persisted
                    // this boundary, so it is now safe to resume from.
                    *committed = Some((boundary, coordinator.clone()));
                } else {
                    coordinator.finish_generation();
                }
            }
        }
    }
}

/// Stops the fleet gracefully: align boundaries, collect the final
/// snapshots, assemble the single-process-equivalent snapshot.
fn finish_fleet<G>(
    fleet: &mut Fleet,
    coordinator: &ShardCoordinator<G>,
    ranges: &[(usize, usize)],
    stop: StopReason,
    unwrap: fn(SnapshotPayload) -> Result<FuzzerSnapshot<G>, String>,
) -> Result<ControlledRun<G>, FleetError>
where
    G: Genome + Serialize + Deserialize,
{
    let next_generation = coordinator.next_generation();
    for (worker, link) in fleet.links.iter_mut().enumerate() {
        send_frame(&mut link.stream, FINISH, &Finish { next_generation })
            .map_err(|e| FleetError::Death(format!("worker {worker} link: {e}")))?;
    }
    let mut finals: Vec<(usize, usize, FuzzerSnapshot<G>)> = Vec::with_capacity(ranges.len());
    for ((worker, link), &(start, end)) in fleet.links.iter_mut().enumerate().zip(ranges) {
        let payload: SnapshotPayload = expect_frame(link, worker, FINAL)?;
        finals.push((start, end, unwrap(payload).map_err(FleetError::Fatal)?));
    }
    let final_snapshot = coordinator
        .assemble_snapshot(&finals)
        .map_err(FleetError::Fatal)?;
    let result = coordinator.result().map_err(FleetError::Fatal)?;
    Ok(ControlledRun {
        result,
        stop,
        final_snapshot,
    })
}

// ---------------------------------------------------------------------------
// The ccfuzzd daemon
// ---------------------------------------------------------------------------

/// Upper bound on one HTTP request (head + body) the daemon accepts.
const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// A hunt submission: the campaign plus its distribution knobs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HuntSpec {
    /// The campaign to run.
    pub config: HuntConfig,
    /// Worker processes to shard the islands across (clamped to ≥ 1 and to
    /// the island count).
    pub workers: usize,
    /// Checkpoint cadence in generations (0 = only the final checkpoint).
    pub checkpoint_every: u32,
    /// Caught-panic budget, fleet restarts included (`None` = unlimited).
    pub panic_budget: Option<u64>,
}

/// Lifecycle of a submitted hunt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HuntState {
    /// Waiting for the runner thread to pick it up.
    Queued,
    /// Executing right now.
    Running,
    /// Ran to completion; the finding payload is available.
    Completed,
    /// Stopped at a generation boundary by daemon shutdown.
    Interrupted,
    /// Stopped because the panic budget was exhausted.
    PanicBudgetExhausted,
    /// Failed; see `error` in the status.
    Failed,
}

/// A point-in-time status view of one hunt, as served over HTTP.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HuntStatus {
    /// The daemon-assigned hunt identifier (`hunt-0001`, ...).
    pub id: String,
    /// Lifecycle state.
    pub state: HuntState,
    /// Latest generation the coordinator absorbed.
    pub generation: u32,
    /// Fleet-wide simulations so far.
    pub evaluations: u64,
    /// Best score so far, once anything was evaluated.
    pub best_score: Option<f64>,
    /// Fleet respawns so far.
    pub restarts: u64,
    /// Current worker process IDs.
    pub worker_pids: Vec<u32>,
    /// Per-worker counter lanes.
    pub workers: Vec<WorkerLaneSnapshot>,
    /// The failure message, for `Failed` hunts.
    pub error: Option<String>,
}

/// One hunt the daemon knows about.
struct HuntEntry {
    spec: HuntSpec,
    status: HuntStatus,
    /// The finding payload of a completed hunt — the exact bytes `ccfuzz
    /// hunt` would have printed to stdout (JSON line + newline).
    payload: Option<String>,
}

/// State shared between the HTTP accept loop and the runner thread.
struct DaemonShared<'a> {
    root: PathBuf,
    exe: PathBuf,
    hunts: Mutex<Vec<HuntEntry>>,
    shutdown: &'a AtomicBool,
}

/// Locks poison-tolerantly: a panicking HTTP handler must not wedge the
/// runner (or vice versa) for the daemon's remaining lifetime.
fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs the daemon: binds `bind` (use port 0 for an OS-assigned port — the
/// actual address is published to `<root>/daemon.addr`), serves the HTTP
/// API and executes queued hunts one at a time on a runner thread. Returns
/// after a graceful drain: once `shutdown` is raised, the listener stops
/// accepting, the running hunt (if any) stops at its next generation
/// boundary, and the address file is removed.
pub fn serve(root: &Path, bind: &str, shutdown: &AtomicBool) -> Result<(), String> {
    std::fs::create_dir_all(root.join("hunts"))
        .map_err(|e| format!("creating {}: {e}", root.join("hunts").display()))?;
    let exe = std::env::current_exe().map_err(|e| format!("resolving own binary: {e}"))?;
    let listener = TcpListener::bind(bind).map_err(|e| format!("binding {bind}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("configuring listener: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("resolving listener address: {e}"))?
        .to_string();
    write_atomic(&root.join("daemon.addr"), addr.as_bytes())
        .map_err(|e| format!("publishing daemon.addr: {e}"))?;
    eprintln!("ccfuzzd: listening on {addr} (root {})", root.display());

    let shared = DaemonShared {
        root: root.to_path_buf(),
        exe,
        hunts: Mutex::new(Vec::new()),
        shutdown,
    };
    std::thread::scope(|scope| {
        scope.spawn(|| runner_loop(&shared));
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => handle_connection(&shared, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => eprintln!("ccfuzzd: accept failed: {e}"),
            }
        }
        // Scope exit joins the runner, which drains on the same flag.
    });
    let _ = std::fs::remove_file(root.join("daemon.addr"));
    eprintln!("ccfuzzd: drained");
    Ok(())
}

/// The runner thread: executes queued hunts in submission order, one at a
/// time, until shutdown.
fn runner_loop(shared: &DaemonShared<'_>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let next = lock(&shared.hunts)
            .iter()
            .position(|h| h.status.state == HuntState::Queued);
        match next {
            Some(idx) => run_one_hunt(shared, idx),
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Runs hunt `idx` end to end and records its terminal state.
fn run_one_hunt(shared: &DaemonShared<'_>, idx: usize) {
    let (id, spec) = {
        let mut hunts = lock(&shared.hunts);
        hunts[idx].status.state = HuntState::Running;
        (hunts[idx].status.id.clone(), hunts[idx].spec.clone())
    };
    eprintln!("ccfuzzd: {id}: starting ({} workers)", spec.workers.max(1));
    let hunt_dir = shared.root.join("hunts").join(&id);
    let result = execute_hunt(shared, idx, &id, &hunt_dir, &spec);
    let mut hunts = lock(&shared.hunts);
    let entry = &mut hunts[idx];
    match result {
        Ok((state, payload)) => {
            entry.status.state = state;
            entry.payload = payload;
        }
        Err(e) => {
            eprintln!("ccfuzzd: {id}: failed: {e}");
            entry.status.state = HuntState::Failed;
            entry.status.error = Some(e);
        }
    }
}

/// The body of one hunt: per-hunt corpus + telemetry sink, the distributed
/// run itself, and on completion the merge into the daemon's shared corpus.
fn execute_hunt(
    shared: &DaemonShared<'_>,
    idx: usize,
    id: &str,
    hunt_dir: &Path,
    spec: &HuntSpec,
) -> Result<(HuntState, Option<String>), String> {
    std::fs::create_dir_all(hunt_dir)
        .map_err(|e| format!("creating {}: {e}", hunt_dir.display()))?;
    let corpus = Corpus::open(hunt_dir.join("corpus")).map_err(|e| e.to_string())?;
    let sink = std::fs::File::create(hunt_dir.join("telemetry.jsonl"))
        .map_err(|e| format!("creating telemetry stream: {e}"))?;
    let telemetry = HuntTelemetry::new().with_sink(Box::new(sink));
    let n_workers = shard_ranges(spec.config.ga.islands, spec.workers.max(1)).len();
    let fleet_t = FleetTelemetry::new(n_workers);
    let progress = |p: DistProgress| {
        let mut hunts = lock(&shared.hunts);
        let status = &mut hunts[idx].status;
        if let Some(pids) = p.worker_pids {
            status.worker_pids = pids;
        } else {
            status.generation = p.generation;
            status.evaluations = p.evaluations;
            if p.best_score.is_some() {
                status.best_score = p.best_score;
            }
        }
        status.restarts = p.restarts;
        status.workers = fleet_t.snapshot();
    };
    let worker_dir = hunt_dir.join("workers");
    let dist = DistOptions {
        workers: spec.workers.max(1),
        checkpoint_every: spec.checkpoint_every,
        exe: &shared.exe,
        worker_dir: &worker_dir,
        fleet: Some(&fleet_t),
        on_progress: Some(&progress),
    };
    let ctl = HuntControl {
        shutdown: Some(shared.shutdown),
        checkpoint_path: Some(hunt_dir.join("checkpoint.json")),
        checkpoint_every: spec.checkpoint_every,
        panic_budget: spec.panic_budget,
        resume: None,
    };
    match hunt_distributed(&corpus, &spec.config, Some(&telemetry), ctl, &dist) {
        Ok(HuntOutcome::Completed { finding, decision }) => {
            let json = serde_json::to_string(&*finding).map_err(|e| e.to_string())?;
            // The exact bytes `ccfuzz hunt` prints: JSON line + newline.
            let payload = format!("{json}\n");
            match Corpus::open(shared.root.join("corpus"))
                .and_then(|shared_corpus| shared_corpus.merge(&corpus))
            {
                Ok(report) => eprintln!(
                    "ccfuzzd: {id}: completed ({decision:?}); merged into shared corpus: \
                     {} added, {} replaced, {} duplicates",
                    report.added, report.replaced, report.duplicates
                ),
                Err(e) => eprintln!("ccfuzzd: {id}: corpus merge failed: {e}"),
            }
            Ok((HuntState::Completed, Some(payload)))
        }
        Ok(HuntOutcome::Interrupted {
            next_generation, ..
        }) => {
            eprintln!("ccfuzzd: {id}: interrupted before generation {next_generation}");
            Ok((HuntState::Interrupted, None))
        }
        Ok(HuntOutcome::PanicBudgetExhausted { panics, .. }) => {
            eprintln!("ccfuzzd: {id}: panic budget exhausted after {panics} panics");
            Ok((HuntState::PanicBudgetExhausted, None))
        }
        Err(e) => Err(e.to_string()),
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

/// Serves one connection: parse, route, respond. All failures are reported
/// to the client and/or stderr; none abort the daemon.
fn handle_connection(shared: &DaemonShared<'_>, mut stream: TcpStream) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.set_nodelay(true).ok();
    match read_request(&mut stream) {
        Ok((method, path, body)) => {
            let (code, content_type, reply) = route(shared, &method, &path, &body);
            respond(&mut stream, code, content_type, &reply);
        }
        Err(e) => respond(
            &mut stream,
            400,
            "text/plain",
            &format!("bad request: {e}\n"),
        ),
    }
}

/// Reads one HTTP/1.1 request: head until the blank line, then
/// `Content-Length` bytes of body.
fn read_request<R: Read>(r: &mut R) -> Result<(String, String, String), String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request head too large".into());
        }
        let n = r
            .read(&mut chunk)
            .map_err(|e| format!("reading request: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "request head is not UTF-8".to_string())?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| "request line lacks a path".to_string())?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "unparseable content-length".to_string())?;
            }
        }
    }
    if content_length > MAX_REQUEST_BYTES {
        return Err("request body too large".into());
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let n = r
            .read(&mut chunk)
            .map_err(|e| format!("reading request body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|_| "request body is not UTF-8".to_string())?;
    Ok((method, path, body))
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Routes one request to its handler.
fn route(
    shared: &DaemonShared<'_>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, &'static str, String) {
    match (method, path) {
        ("POST", "/hunts") => submit_hunt(shared, body),
        ("GET", "/hunts") => {
            let statuses: Vec<HuntStatus> = lock(&shared.hunts)
                .iter()
                .map(|h| h.status.clone())
                .collect();
            json_ok(&statuses)
        }
        ("GET", p) if p.starts_with("/hunts/") => {
            let rest = &p["/hunts/".len()..];
            match rest.split_once('/') {
                None => hunt_status(shared, rest),
                Some((id, "stream")) => hunt_stream(shared, id),
                Some((id, "findings")) => hunt_findings(shared, id),
                Some(_) => not_found("no such endpoint"),
            }
        }
        _ => not_found("no such endpoint"),
    }
}

fn json_ok<T: Serialize>(value: &T) -> (u16, &'static str, String) {
    match serde_json::to_string(value) {
        Ok(mut s) => {
            s.push('\n');
            (200, "application/json", s)
        }
        Err(e) => (500, "text/plain", format!("encoding response: {e}\n")),
    }
}

fn not_found(message: &str) -> (u16, &'static str, String) {
    (404, "text/plain", format!("{message}\n"))
}

/// `POST /hunts`: queue a hunt, reply with its id.
fn submit_hunt(shared: &DaemonShared<'_>, body: &str) -> (u16, &'static str, String) {
    let spec: HuntSpec = match serde_json::from_str(body) {
        Ok(spec) => spec,
        Err(e) => return (400, "text/plain", format!("invalid hunt spec: {e}\n")),
    };
    if spec.config.ga.islands == 0 || spec.config.ga.population_per_island == 0 {
        return (
            400,
            "text/plain",
            "invalid hunt spec: islands and population must be non-zero\n".to_string(),
        );
    }
    let mut hunts = lock(&shared.hunts);
    let id = format!("hunt-{:04}", hunts.len() + 1);
    hunts.push(HuntEntry {
        spec,
        status: HuntStatus {
            id: id.clone(),
            state: HuntState::Queued,
            generation: 0,
            evaluations: 0,
            best_score: None,
            restarts: 0,
            worker_pids: Vec::new(),
            workers: Vec::new(),
            error: None,
        },
        payload: None,
    });
    let reply = Value::Map(vec![("id".to_string(), Value::Str(id))]);
    json_ok(&reply)
}

/// `GET /hunts/{id}`: one hunt's status.
fn hunt_status(shared: &DaemonShared<'_>, id: &str) -> (u16, &'static str, String) {
    let hunts = lock(&shared.hunts);
    match hunts.iter().find(|h| h.status.id == id) {
        Some(entry) => json_ok(&entry.status),
        None => not_found(&format!("unknown hunt `{id}`")),
    }
}

/// `GET /hunts/{id}/stream`: the hunt's per-generation telemetry JSONL, as
/// written by the campaign so far.
fn hunt_stream(shared: &DaemonShared<'_>, id: &str) -> (u16, &'static str, String) {
    if !lock(&shared.hunts).iter().any(|h| h.status.id == id) {
        return not_found(&format!("unknown hunt `{id}`"));
    }
    let path = shared.root.join("hunts").join(id).join("telemetry.jsonl");
    // Missing file just means no generation finished yet.
    let stream = std::fs::read_to_string(path).unwrap_or_default();
    (200, "application/x-ndjson", stream)
}

/// `GET /hunts/{id}/findings`: the completed hunt's finding payload —
/// byte-identical to what `ccfuzz hunt` prints.
fn hunt_findings(shared: &DaemonShared<'_>, id: &str) -> (u16, &'static str, String) {
    let hunts = lock(&shared.hunts);
    match hunts.iter().find(|h| h.status.id == id) {
        Some(entry) => match &entry.payload {
            Some(payload) => (200, "application/json", payload.clone()),
            None => not_found(&format!("hunt `{id}` has no findings (yet)")),
        },
        None => not_found(&format!("unknown hunt `{id}`")),
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Client helpers (used by the `ccfuzz` submit/status/fetch subcommands)
// ---------------------------------------------------------------------------

/// Performs one blocking HTTP/1.1 request against a daemon and returns the
/// status code and response body.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading response: {e}"))?;
    let (head, resp_body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    Ok((code, resp_body.to_string()))
}

/// Resolves a `--daemon` argument: a bare `host:port` is used directly;
/// anything that names a directory (or contains a path separator) is
/// treated as a daemon root whose `daemon.addr` file holds the address.
pub fn resolve_daemon_addr(value: &str) -> Result<String, String> {
    let path = Path::new(value);
    if path.is_dir() || value.contains('/') {
        let addr_file = path.join("daemon.addr");
        let addr = std::fs::read_to_string(&addr_file).map_err(|e| {
            format!(
                "reading {} (is the daemon running?): {e}",
                addr_file.display()
            )
        })?;
        Ok(addr.trim().to_string())
    } else {
        Ok(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_cca::CcaKind;
    use std::io::Cursor;

    #[test]
    fn http_requests_parse_with_and_without_bodies() {
        let raw = b"POST /hunts HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let (method, path, body) = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/hunts");
        assert_eq!(body, "hello world");

        let raw = b"GET /hunts/hunt-0001/findings HTTP/1.1\r\n\r\n";
        let (method, path, body) = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(method, "GET");
        assert_eq!(path, "/hunts/hunt-0001/findings");
        assert!(body.is_empty());

        // A request cut before the blank line is an error, not a hang.
        assert!(read_request(&mut Cursor::new(&b"GET /"[..])).is_err());
    }

    #[test]
    fn hunt_specs_roundtrip_as_json() {
        let spec = HuntSpec {
            config: HuntConfig::quick(CcaKind::Bbr, FuzzMode::Topology, 4, 33),
            workers: 2,
            checkpoint_every: 1,
            panic_budget: Some(3),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: HuntSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn daemon_addrs_resolve_from_roots_and_literals() {
        assert_eq!(
            resolve_daemon_addr("127.0.0.1:8080").unwrap(),
            "127.0.0.1:8080"
        );
        let dir = std::env::temp_dir().join(format!("ccfuzzd-addr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("daemon.addr"), "127.0.0.1:9999\n").unwrap();
        assert_eq!(
            resolve_daemon_addr(dir.to_str().unwrap()).unwrap(),
            "127.0.0.1:9999"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
