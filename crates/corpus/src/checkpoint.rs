//! Persistent campaign checkpoints and panic artifacts.
//!
//! A [`CampaignCheckpoint`] is the on-disk form of a paused campaign: the
//! full [`HuntConfig`] it must be resumed with (guarded by a digest), the
//! mode-erased fuzzer state, and the telemetry totals accumulated so far.
//! Checkpoints are written atomically (temp + fsync + rename) so a crash
//! mid-checkpoint leaves the previous checkpoint intact, and a resumed
//! campaign replays the exact trajectory the interrupted one would have
//! taken.
//!
//! A [`PanicFinding`] persists one caught evaluation panic — the genome
//! that triggered it plus the panic message — so a crash-inducing input is
//! never lost even though the campaign kept running.

use crate::finding::GenomePayload;
use crate::hunt::HuntConfig;
use crate::store::CorpusError;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::FuzzMode;
use ccfuzz_core::checkpoint::SnapshotPayload;
use ccfuzz_obs::write_atomic;
use ccfuzz_obs::OperatorSnapshot;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Checkpoint file schema version; bump on breaking layout changes.
pub const CHECKPOINT_SCHEMA: u32 = 1;

/// Panic-artifact file schema version.
pub const PANIC_SCHEMA: u32 = 1;

/// Cumulative telemetry totals embedded in a checkpoint so a resumed
/// campaign's counters continue from the interrupted run instead of
/// restarting at zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryCounters {
    /// Fitness evaluations completed.
    pub evaluations: u64,
    /// Offspring per genetic operator.
    pub operators: OperatorSnapshot,
    /// Evaluation panics caught and isolated.
    pub panics_caught: u64,
    /// Checkpoints written so far (including the one embedding this).
    pub checkpoints_written: u64,
    /// Total checkpoint bytes persisted before this checkpoint.
    pub checkpoint_bytes: u64,
    /// Findings accepted by the corpus.
    pub corpus_inserted: u64,
    /// Findings rejected as duplicates / by retention.
    pub corpus_deduplicated: u64,
}

/// One resumable campaign state on disk.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// File schema version ([`CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The exact hunt configuration the campaign was started with; a resume
    /// re-runs this config, never a caller-supplied variant.
    pub config: HuntConfig,
    /// FNV-1a digest of the canonical JSON of `config`, verified on load so
    /// a hand-edited checkpoint cannot silently resume a different campaign.
    pub config_digest: u64,
    /// Corpus root the campaign was persisting into.
    pub corpus_dir: String,
    /// Checkpoint cadence the campaign was running with.
    pub checkpoint_every: u32,
    /// Panic budget the campaign was running with.
    pub panic_budget: Option<u64>,
    /// Whether the campaign had already run to completion when this
    /// checkpoint was written. Resuming a completed checkpoint re-emits the
    /// identical result (the SIGKILL-after-final-checkpoint edge case).
    pub completed: bool,
    /// Telemetry totals at the checkpoint boundary.
    pub telemetry: TelemetryCounters,
    /// The mode-erased fuzzer state.
    pub state: SnapshotPayload,
}

impl CampaignCheckpoint {
    /// Serializes and atomically writes the checkpoint, returning the bytes
    /// written.
    pub fn write_atomic<P: AsRef<Path>>(&self, path: P) -> Result<u64, CorpusError> {
        let json = serde_json::to_string_pretty(self)?;
        Ok(write_atomic(path.as_ref(), (json + "\n").as_bytes())?)
    }

    /// Loads and fully verifies a checkpoint: schema version, config
    /// digest, structural snapshot validity, and config/state mode
    /// agreement.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<CampaignCheckpoint, CorpusError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| CorpusError(format!("reading checkpoint {}: {e}", path.display())))?;
        let ck: CampaignCheckpoint = serde_json::from_str(&text)?;
        if ck.schema != CHECKPOINT_SCHEMA {
            return Err(CorpusError(format!(
                "checkpoint schema {} is not the supported {CHECKPOINT_SCHEMA}",
                ck.schema
            )));
        }
        let expect = hunt_config_digest(&ck.config);
        if ck.config_digest != expect {
            return Err(CorpusError(format!(
                "checkpoint config digest {:#018x} does not match its config ({expect:#018x}); \
                 the file was modified",
                ck.config_digest
            )));
        }
        ck.state.validate().map_err(CorpusError)?;
        if !ck.state.matches_mode(ck.config.mode) {
            return Err(CorpusError(format!(
                "checkpoint state holds a {} population but its config is {} mode",
                ck.state.kind_name(),
                ck.config.mode.name()
            )));
        }
        Ok(ck)
    }
}

/// FNV-1a over the canonical JSON encoding of a hunt configuration.
pub fn hunt_config_digest(config: &HuntConfig) -> u64 {
    let json = serde_json::to_string(config).expect("HuntConfig always serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One caught evaluation panic, persisted for replay and triage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PanicFinding {
    /// File schema version ([`PANIC_SCHEMA`]).
    pub schema: u32,
    /// 1-based position in the campaign's panic log; doubles as the file
    /// name stem, so re-persisting after a resume is idempotent.
    pub ordinal: u64,
    /// Algorithm under test.
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// Generation whose evaluation panicked.
    pub generation: u32,
    /// Island holding the panicking individual.
    pub island: usize,
    /// Index of the individual within its island.
    pub index: usize,
    /// The panic payload (message), when it was a string.
    pub message: String,
    /// The genome whose evaluation panicked.
    pub genome: GenomePayload,
}

impl PanicFinding {
    /// The file name this artifact persists under.
    pub fn file_name(&self) -> String {
        format!("panic-{:04}.json", self.ordinal)
    }

    /// Atomically writes the artifact into `dir` (created if needed).
    pub fn write_into(&self, dir: &Path) -> Result<u64, CorpusError> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(self)?;
        Ok(write_atomic(
            &dir.join(self.file_name()),
            (json + "\n").as_bytes(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunt::hunt_controlled;
    use crate::hunt::HuntControl;
    use crate::store::{Corpus, CorpusConfig};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config() -> HuntConfig {
        let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 3, 21);
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.ga.threads = 2;
        config.duration = ccfuzz_netsim::time::SimDuration::from_secs(1);
        config
    }

    #[test]
    fn digest_is_stable_and_config_sensitive() {
        let config = tiny_config();
        assert_eq!(hunt_config_digest(&config), hunt_config_digest(&config));
        let mut other = config.clone();
        other.ga.seed += 1;
        assert_ne!(hunt_config_digest(&config), hunt_config_digest(&other));
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_tampering() {
        let dir = temp_dir("roundtrip");
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();
        let config = tiny_config();
        let path = dir.join("ck.json");
        hunt_controlled(
            &corpus,
            &config,
            None,
            HuntControl {
                checkpoint_path: Some(path.clone()),
                checkpoint_every: 1,
                ..HuntControl::default()
            },
        )
        .unwrap();

        let ck = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(ck.schema, CHECKPOINT_SCHEMA);
        assert_eq!(ck.config, config);
        assert!(ck.completed);
        assert_eq!(ck.state.next_generation(), config.ga.generations);
        assert_eq!(ck.telemetry.evaluations, ck.state.evaluations() as u64);

        // Tampering with the embedded config breaks the digest.
        let mut tampered = ck.clone();
        tampered.config.ga.seed += 1;
        let tampered_path = dir.join("tampered.json");
        tampered.write_atomic(&tampered_path).unwrap();
        let err = CampaignCheckpoint::load(&tampered_path).unwrap_err();
        assert!(err.0.contains("digest"), "{err}");

        // An unsupported schema version is refused.
        let mut wrong = ck.clone();
        wrong.schema = 99;
        wrong.config_digest = hunt_config_digest(&wrong.config);
        let wrong_path = dir.join("wrong-schema.json");
        wrong.write_atomic(&wrong_path).unwrap();
        let err = CampaignCheckpoint::load(&wrong_path).unwrap_err();
        assert!(err.0.contains("schema"), "{err}");

        // A truncated checkpoint file fails to load but never panics.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = dir.join("cut.json");
        std::fs::write(&cut, &text[..text.len() / 3]).unwrap();
        assert!(CampaignCheckpoint::load(&cut).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
