//! The on-disk findings corpus.
//!
//! A corpus is a directory of `findings/<id>.json` files, one per finding.
//! The id embeds the behaviour signature, so deduplication is structural:
//! inserting a finding whose (CCA, mode, signature) already exists either
//! replaces the stored one (if the new score is higher) or is rejected.
//! Each (CCA, mode) bucket retains at most `top_k_per_bucket` findings; the
//! weakest are evicted when the bucket overflows.
//!
//! Everything is plain JSON so fixtures can be committed to git and diffed.

use crate::finding::Finding;
use ccfuzz_cca::CcaKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Corpus-wide policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Maximum findings kept per (CCA, mode) bucket.
    pub top_k_per_bucket: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            top_k_per_bucket: 8,
        }
    }
}

/// Error raised by corpus operations.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusError(pub String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus error: {}", self.0)
    }
}

impl std::error::Error for CorpusError {}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError(format!("io: {e}"))
    }
}

impl From<serde_json::Error> for CorpusError {
    fn from(e: serde_json::Error) -> Self {
        CorpusError(format!("json: {e}"))
    }
}

/// What [`Corpus::insert`] did with a candidate finding.
#[derive(Clone, Debug, PartialEq)]
pub enum InsertOutcome {
    /// The finding was new and stored.
    Added,
    /// A weaker finding with the same signature was replaced.
    ReplacedWeaker {
        /// Score of the replaced finding.
        previous_score: f64,
    },
    /// A finding with the same signature and an equal or better score is
    /// already stored.
    DuplicateRejected {
        /// Score of the finding already in the corpus.
        existing_score: f64,
    },
    /// The (CCA, mode) bucket is full of stronger findings.
    BucketFullRejected {
        /// Weakest stored score in the bucket.
        weakest_kept_score: f64,
    },
}

/// A directory-backed findings corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    root: PathBuf,
    config: CorpusConfig,
}

impl Corpus {
    /// Opens (creating if needed) a corpus rooted at `root`.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Corpus, CorpusError> {
        Self::open_with(root, CorpusConfig::default())
    }

    /// Opens a corpus with explicit policy. A `top_k_per_bucket` of 0 would
    /// make every insert impossible, so it is clamped to 1.
    pub fn open_with<P: AsRef<Path>>(
        root: P,
        mut config: CorpusConfig,
    ) -> Result<Corpus, CorpusError> {
        config.top_k_per_bucket = config.top_k_per_bucket.max(1);
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("findings"))?;
        Ok(Corpus { root, config })
    }

    /// The corpus root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding the finding JSON files.
    pub fn findings_dir(&self) -> PathBuf {
        self.root.join("findings")
    }

    fn path_for(&self, id: &str) -> PathBuf {
        self.findings_dir().join(format!("{id}.json"))
    }

    /// Loads one finding by id.
    pub fn get(&self, id: &str) -> Result<Finding, CorpusError> {
        let path = self.path_for(id);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CorpusError(format!("reading {}: {e}", path.display())))?;
        let finding: Finding = serde_json::from_str(&text)?;
        finding.validate().map_err(CorpusError)?;
        Ok(finding)
    }

    /// Loads every finding, sorted by id (deterministic order).
    pub fn load_all(&self) -> Result<Vec<Finding>, CorpusError> {
        let mut ids = self.ids()?;
        ids.sort();
        ids.iter().map(|id| self.get(id)).collect()
    }

    /// All stored finding ids, unsorted.
    pub fn ids(&self) -> Result<Vec<String>, CorpusError> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(self.findings_dir())? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
        }
        Ok(ids)
    }

    /// Writes a finding unconditionally (used by minimization to update a
    /// stored finding in place).
    pub fn save(&self, finding: &Finding) -> Result<PathBuf, CorpusError> {
        finding.validate().map_err(CorpusError)?;
        let path = self.path_for(&finding.id);
        let json = serde_json::to_string_pretty(finding)?;
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }

    /// Removes a finding by id.
    pub fn remove(&self, id: &str) -> Result<(), CorpusError> {
        std::fs::remove_file(self.path_for(id))?;
        Ok(())
    }

    /// Inserts a finding with signature-dedup and top-K bucket retention.
    pub fn insert(&self, finding: &Finding) -> Result<InsertOutcome, CorpusError> {
        finding.validate().map_err(CorpusError)?;

        // Signature-level dedup: the id embeds (cca, mode, signature).
        if let Ok(existing) = self.get(&finding.id) {
            if existing.outcome.score >= finding.outcome.score {
                return Ok(InsertOutcome::DuplicateRejected {
                    existing_score: existing.outcome.score,
                });
            }
            self.save(finding)?;
            return Ok(InsertOutcome::ReplacedWeaker {
                previous_score: existing.outcome.score,
            });
        }

        // Bucket retention: keep only the strongest `top_k_per_bucket`
        // findings per (cca, mode).
        let mut bucket: Vec<Finding> = self
            .load_all()?
            .into_iter()
            .filter(|f| f.cca == finding.cca && f.mode == finding.mode)
            .collect();
        if bucket.len() >= self.config.top_k_per_bucket {
            bucket.sort_by(|a, b| {
                a.outcome
                    .score
                    .partial_cmp(&b.outcome.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let weakest = &bucket[0];
            if weakest.outcome.score >= finding.outcome.score {
                return Ok(InsertOutcome::BucketFullRejected {
                    weakest_kept_score: weakest.outcome.score,
                });
            }
            // Evict enough of the weakest to make room.
            let evict = bucket.len() + 1 - self.config.top_k_per_bucket;
            for f in bucket.iter().take(evict) {
                self.remove(&f.id)?;
            }
        }
        self.save(finding)?;
        Ok(InsertOutcome::Added)
    }

    /// Findings grouped by (CCA, mode), each group sorted by descending
    /// score — the shape reports want.
    #[allow(clippy::type_complexity)]
    pub fn buckets(&self) -> Result<BTreeMap<(String, String), Vec<Finding>>, CorpusError> {
        let mut out: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for finding in self.load_all()? {
            out.entry((
                finding.cca.name().to_string(),
                finding.mode.name().to_string(),
            ))
            .or_default()
            .push(finding);
        }
        for group in out.values_mut() {
            group.sort_by(|a, b| {
                b.outcome
                    .score
                    .partial_cmp(&a.outcome.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.id.cmp(&b.id))
            });
        }
        Ok(out)
    }

    /// Convenience: ids of one CCA's findings (any mode), sorted. Filters on
    /// the stored `cca` field rather than an id prefix — several CCA names
    /// are prefixes of others ("cubic" / "cubic-ns3-buggy").
    pub fn ids_for_cca(&self, cca: CcaKind) -> Result<Vec<String>, CorpusError> {
        let mut ids: Vec<String> = self
            .load_all()?
            .into_iter()
            .filter(|f| f.cca == cca)
            .map(|f| f.id)
            .collect();
        ids.sort();
        Ok(ids)
    }

    /// Replaces the stored finding `old_id` with `finding` (the minimization
    /// path). When the id is unchanged this is a plain overwrite; when
    /// minimization moved the finding into another signature bucket, the old
    /// file is removed and the finding goes through [`Corpus::insert`], so a
    /// stronger finding already stored under the new id is never clobbered.
    pub fn update(&self, old_id: &str, finding: &Finding) -> Result<InsertOutcome, CorpusError> {
        if finding.id == old_id {
            self.save(finding)?;
            return Ok(InsertOutcome::Added);
        }
        self.remove(old_id)?;
        self.insert(finding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::{finding_id, GenomePayload, Provenance};
    use crate::signature::BehaviorSignature;
    use ccfuzz_core::campaign::paper_sim_base;
    use ccfuzz_core::campaign::FuzzMode;
    use ccfuzz_core::evaluate::EvalOutcome;
    use ccfuzz_core::genome::TrafficGenome;
    use ccfuzz_core::scoring::ScoringConfig;
    use ccfuzz_netsim::time::{SimDuration, SimTime};

    /// A synthetic finding whose outcome (and hence signature) is controlled
    /// by the caller — no simulation involved.
    fn synthetic(cca: CcaKind, score: f64, rto_count: u64) -> Finding {
        let duration = SimDuration::from_secs(2);
        let outcome = EvalOutcome {
            score,
            performance_score: score,
            rto_count,
            goodput_bps: 1e6,
            ..Default::default()
        };
        let signature = BehaviorSignature::from_outcome(&outcome, 12e6);
        let genome = TrafficGenome {
            timestamps: vec![SimTime::from_millis(100), SimTime::from_millis(200)],
            duration,
            max_packets: 100,
        };
        Finding {
            id: finding_id(cca, FuzzMode::Traffic, &signature),
            cca,
            mode: FuzzMode::Traffic,
            genome: GenomePayload::Traffic(genome),
            sim: paper_sim_base(duration),
            scoring: ScoringConfig::low_throughput_default(12e6),
            link_rate_bps: 12_000_000,
            outcome,
            signature,
            behavior_digest: 0,
            provenance: Provenance {
                seed: 1,
                generations: 1,
                total_evaluations: 1,
                minimized: false,
                original_score: score,
                original_packets: 2,
            },
            fairness: None,
        }
    }

    fn temp_corpus(config: CorpusConfig) -> (Corpus, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-corpus-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Corpus::open_with(&dir, config).unwrap(), dir)
    }

    #[test]
    fn save_load_roundtrip_preserves_the_finding() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        let finding = synthetic(CcaKind::Reno, 0.9, 4);
        corpus.save(&finding).unwrap();
        let loaded = corpus.get(&finding.id).unwrap();
        assert_eq!(loaded, finding);
        assert_eq!(corpus.load_all().unwrap(), vec![finding]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn insert_dedups_by_signature_keeping_the_stronger() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // Same signature bucket (scores 0.90 / 0.91 share the 5% bucket 18),
        // different scores.
        let weak = synthetic(CcaKind::Reno, 0.90, 4);
        let strong = synthetic(CcaKind::Reno, 0.912, 4);
        assert_eq!(weak.id, strong.id, "test premise: same signature");

        assert_eq!(corpus.insert(&weak).unwrap(), InsertOutcome::Added);
        assert_eq!(
            corpus.insert(&weak).unwrap(),
            InsertOutcome::DuplicateRejected {
                existing_score: 0.90
            }
        );
        assert_eq!(
            corpus.insert(&strong).unwrap(),
            InsertOutcome::ReplacedWeaker {
                previous_score: 0.90
            }
        );
        assert_eq!(corpus.get(&weak.id).unwrap().outcome.score, 0.912);
        assert_eq!(corpus.load_all().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bucket_retention_evicts_the_weakest() {
        let (corpus, dir) = temp_corpus(CorpusConfig {
            top_k_per_bucket: 2,
        });
        // Three distinct signatures (different rto bands).
        let a = synthetic(CcaKind::Reno, 0.5, 1);
        let b = synthetic(CcaKind::Reno, 0.7, 2);
        let c = synthetic(CcaKind::Reno, 0.9, 4);
        assert_eq!(corpus.insert(&a).unwrap(), InsertOutcome::Added);
        assert_eq!(corpus.insert(&b).unwrap(), InsertOutcome::Added);
        assert_eq!(corpus.insert(&c).unwrap(), InsertOutcome::Added);
        let kept = corpus.load_all().unwrap();
        assert_eq!(kept.len(), 2);
        assert!(
            kept.iter().all(|f| f.outcome.score > 0.6),
            "weakest was evicted"
        );

        // A finding weaker than everything kept is rejected.
        let d = synthetic(CcaKind::Reno, 0.4, 8);
        assert_eq!(
            corpus.insert(&d).unwrap(),
            InsertOutcome::BucketFullRejected {
                weakest_kept_score: 0.7
            }
        );
        // Other buckets (different CCA) are unaffected by retention.
        let e = synthetic(CcaKind::Cubic, 0.2, 1);
        assert_eq!(corpus.insert(&e).unwrap(), InsertOutcome::Added);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn update_never_clobbers_a_stronger_finding_on_id_collision() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // A and B share neither score bucket nor rto band initially.
        let a = synthetic(CcaKind::Reno, 0.91, 4);
        let b = synthetic(CcaKind::Reno, 0.5, 1);
        corpus.insert(&a).unwrap();
        corpus.insert(&b).unwrap();

        // Minimization moved B into A's signature bucket, but weaker than A.
        let mut b_minimized = synthetic(CcaKind::Reno, 0.905, 4);
        b_minimized.provenance.minimized = true;
        assert_eq!(b_minimized.id, a.id, "test premise: collision with A");

        let outcome = corpus.update(&b.id, &b_minimized).unwrap();
        assert_eq!(
            outcome,
            InsertOutcome::DuplicateRejected {
                existing_score: 0.91
            }
        );
        // A survives untouched; B's old file is gone.
        assert_eq!(corpus.get(&a.id).unwrap().outcome.score, 0.91);
        assert!(corpus.get(&b.id).is_err());

        // Same-id update is a plain overwrite.
        let a_refreshed = synthetic(CcaKind::Reno, 0.91, 4);
        assert_eq!(
            corpus.update(&a.id, &a_refreshed).unwrap(),
            InsertOutcome::Added
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zero_top_k_is_clamped_not_a_panic() {
        let (corpus, dir) = temp_corpus(CorpusConfig {
            top_k_per_bucket: 0,
        });
        assert_eq!(
            corpus.insert(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap(),
            InsertOutcome::Added
        );
        assert_eq!(corpus.load_all().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ids_for_cca_does_not_conflate_prefix_named_ccas() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        corpus.insert(&synthetic(CcaKind::Cubic, 0.9, 4)).unwrap();
        corpus
            .insert(&synthetic(CcaKind::CubicNs3Buggy, 0.9, 4))
            .unwrap();
        let cubic = corpus.ids_for_cca(CcaKind::Cubic).unwrap();
        assert_eq!(cubic.len(), 1);
        assert!(cubic[0].starts_with("cubic-traffic-"));
        assert_eq!(corpus.ids_for_cca(CcaKind::CubicNs3Buggy).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn buckets_group_and_sort_by_score() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        corpus.insert(&synthetic(CcaKind::Reno, 0.5, 1)).unwrap();
        corpus.insert(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap();
        corpus.insert(&synthetic(CcaKind::Cubic, 0.7, 2)).unwrap();
        let buckets = corpus.buckets().unwrap();
        assert_eq!(buckets.len(), 2);
        let reno = &buckets[&("reno".to_string(), "traffic".to_string())];
        assert_eq!(reno.len(), 2);
        assert!(reno[0].outcome.score > reno[1].outcome.score);
        assert_eq!(corpus.ids_for_cca(CcaKind::Cubic).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
