//! The on-disk findings corpus.
//!
//! A corpus is a directory of `findings/<id>.json` files, one per finding.
//! The id embeds the behaviour signature, so deduplication is structural:
//! inserting a finding whose (CCA, mode, signature) already exists either
//! replaces the stored one (if the new score is higher) or is rejected.
//! Each (CCA, mode) bucket retains at most `top_k_per_bucket` findings; the
//! weakest are evicted when the bucket overflows.
//!
//! Everything is plain JSON so fixtures can be committed to git and diffed.
//!
//! Crash safety: every write goes through `ccfuzz_obs::write_atomic`
//! (write-temp + fsync + rename), opening a corpus runs a recovery pass
//! that sweeps stray staging files and quarantines truncated or unparsable
//! finding files, and writers take an exclusive [`CorpusLock`] so two
//! campaigns never clobber one store.

use crate::finding::Finding;
use ccfuzz_cca::CcaKind;
use ccfuzz_obs::write_atomic;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Corpus-wide policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Maximum findings kept per (CCA, mode) bucket.
    pub top_k_per_bucket: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            top_k_per_bucket: 8,
        }
    }
}

/// Error raised by corpus operations.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusError(pub String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus error: {}", self.0)
    }
}

impl std::error::Error for CorpusError {}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        CorpusError(format!("io: {e}"))
    }
}

impl From<serde_json::Error> for CorpusError {
    fn from(e: serde_json::Error) -> Self {
        CorpusError(format!("json: {e}"))
    }
}

/// What [`Corpus::insert`] did with a candidate finding.
#[derive(Clone, Debug, PartialEq)]
pub enum InsertOutcome {
    /// The finding was new and stored.
    Added,
    /// A weaker finding with the same signature was replaced.
    ReplacedWeaker {
        /// Score of the replaced finding.
        previous_score: f64,
    },
    /// A finding with the same signature and an equal or better score is
    /// already stored.
    DuplicateRejected {
        /// Score of the finding already in the corpus.
        existing_score: f64,
    },
    /// The (CCA, mode) bucket is full of stronger findings.
    BucketFullRejected {
        /// Weakest stored score in the bucket.
        weakest_kept_score: f64,
    },
}

/// What the startup recovery pass found (and repaired) while opening a
/// corpus that a previous process may have left mid-write.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// File names (not paths) of finding files that failed to parse or
    /// validate and were moved into the corpus's `quarantine/` directory.
    pub quarantined: Vec<String>,
    /// Stray atomic-write staging files (`*.tmp`) swept away.
    pub swept_tmp: usize,
}

impl RecoveryReport {
    /// Whether recovery had nothing to repair.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.swept_tmp == 0
    }

    /// Total files touched by recovery.
    pub fn total(&self) -> u64 {
        (self.quarantined.len() + self.swept_tmp) as u64
    }
}

/// What [`Corpus::merge`] did with the source corpus's findings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergeReport {
    /// Findings new to this corpus and stored.
    pub added: u64,
    /// Findings that replaced a weaker same-signature incumbent.
    pub replaced: u64,
    /// Findings rejected because an equal-or-stronger same-signature
    /// incumbent exists.
    pub duplicates: u64,
    /// Findings rejected because their (CCA, mode) bucket is full of
    /// stronger findings.
    pub bucket_full: u64,
    /// Source finding files the source corpus's recovery pass had
    /// quarantined (they never became merge candidates).
    pub source_quarantined: u64,
}

impl MergeReport {
    /// Total candidates examined (quarantined source files excluded).
    pub fn candidates(&self) -> u64 {
        self.added + self.replaced + self.duplicates + self.bucket_full
    }
}

/// An exclusive advisory lock on a corpus, preventing two campaigns from
/// interleaving writes into one store. Created by [`Corpus::lock`]; the
/// lock file is removed when the guard drops.
#[derive(Debug)]
pub struct CorpusLock {
    path: PathBuf,
}

impl Drop for CorpusLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A directory-backed findings corpus.
#[derive(Clone, Debug)]
pub struct Corpus {
    root: PathBuf,
    config: CorpusConfig,
    recovery: RecoveryReport,
}

impl Corpus {
    /// Opens (creating if needed) a corpus rooted at `root`.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Corpus, CorpusError> {
        Self::open_with(root, CorpusConfig::default())
    }

    /// Opens a corpus with explicit policy. A `top_k_per_bucket` of 0 would
    /// make every insert impossible, so it is clamped to 1. Opening runs the
    /// startup recovery pass: stray atomic-write staging files are removed
    /// and finding files that no longer parse or validate (e.g. truncated by
    /// a crash predating atomic writes) are quarantined rather than left to
    /// abort every later `load_all`.
    pub fn open_with<P: AsRef<Path>>(
        root: P,
        mut config: CorpusConfig,
    ) -> Result<Corpus, CorpusError> {
        config.top_k_per_bucket = config.top_k_per_bucket.max(1);
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("findings"))?;
        let recovery = recover(&root)?;
        Ok(Corpus {
            root,
            config,
            recovery,
        })
    }

    /// What the startup recovery pass repaired when this corpus was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The corpus root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding the finding JSON files.
    pub fn findings_dir(&self) -> PathBuf {
        self.root.join("findings")
    }

    /// The directory quarantined (corrupt) finding files are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Takes the corpus's exclusive campaign lock. Fails if another live
    /// process holds it; a lock left by a dead process is stolen. The lock
    /// file records `pid:starttime` (procfs field 22), so a dead holder is
    /// recognised even when an unrelated process has recycled its PID — the
    /// recycled process has a different start time. The lock releases when
    /// the returned guard drops.
    pub fn lock(&self) -> Result<CorpusLock, CorpusError> {
        let path = self.root.join("LOCK");
        // Two attempts: the second runs only after a stale lock was swept,
        // so a concurrent stealer winning the race surfaces as "locked by".
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let pid = std::process::id();
                    match proc_starttime(pid) {
                        // `pid:starttime` when procfs can tell us our own
                        // start time; bare `pid` otherwise (the conservative
                        // legacy format).
                        Some(start) => writeln!(file, "{pid}:{start}")?,
                        None => writeln!(file, "{pid}")?,
                    }
                    file.sync_all()?;
                    return Ok(CorpusLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path).unwrap_or_default();
                    // Steal only on positive evidence the holder is gone. An
                    // unreadable or mid-write lock file is treated as held.
                    let stale = holder_is_dead(holder.trim());
                    if !stale {
                        return Err(CorpusError(format!(
                            "corpus {} is locked by process {} (remove {} if that process is dead)",
                            self.root.display(),
                            holder.trim(),
                            path.display()
                        )));
                    }
                    std::fs::remove_file(&path)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(CorpusError(format!(
            "corpus {} lock is contended",
            self.root.display()
        )))
    }

    fn path_for(&self, id: &str) -> PathBuf {
        self.findings_dir().join(format!("{id}.json"))
    }

    /// Loads one finding by id.
    pub fn get(&self, id: &str) -> Result<Finding, CorpusError> {
        let path = self.path_for(id);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CorpusError(format!("reading {}: {e}", path.display())))?;
        let finding: Finding = serde_json::from_str(&text)?;
        finding.validate().map_err(CorpusError)?;
        Ok(finding)
    }

    /// Loads every finding, sorted by id (deterministic order).
    pub fn load_all(&self) -> Result<Vec<Finding>, CorpusError> {
        let mut ids = self.ids()?;
        ids.sort();
        ids.iter().map(|id| self.get(id)).collect()
    }

    /// All stored finding ids, unsorted.
    pub fn ids(&self) -> Result<Vec<String>, CorpusError> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(self.findings_dir())? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    ids.push(stem.to_string());
                }
            }
        }
        Ok(ids)
    }

    /// Writes a finding unconditionally (used by minimization to update a
    /// stored finding in place). The write is atomic (temp + fsync +
    /// rename), so a crash mid-save never leaves a truncated finding file.
    pub fn save(&self, finding: &Finding) -> Result<PathBuf, CorpusError> {
        finding.validate().map_err(CorpusError)?;
        let path = self.path_for(&finding.id);
        let json = serde_json::to_string_pretty(finding)?;
        write_atomic(&path, (json + "\n").as_bytes())?;
        Ok(path)
    }

    /// Removes a finding by id.
    pub fn remove(&self, id: &str) -> Result<(), CorpusError> {
        std::fs::remove_file(self.path_for(id))?;
        Ok(())
    }

    /// Inserts a finding with signature-dedup and top-K bucket retention.
    pub fn insert(&self, finding: &Finding) -> Result<InsertOutcome, CorpusError> {
        finding.validate().map_err(CorpusError)?;

        // Signature-level dedup: the id embeds (cca, mode, signature).
        if let Ok(existing) = self.get(&finding.id) {
            if existing.outcome.score >= finding.outcome.score {
                return Ok(InsertOutcome::DuplicateRejected {
                    existing_score: existing.outcome.score,
                });
            }
            self.save(finding)?;
            return Ok(InsertOutcome::ReplacedWeaker {
                previous_score: existing.outcome.score,
            });
        }

        // Bucket retention: keep only the strongest `top_k_per_bucket`
        // findings per (cca, mode).
        let mut bucket: Vec<Finding> = self
            .load_all()?
            .into_iter()
            .filter(|f| f.cca == finding.cca && f.mode == finding.mode)
            .collect();
        if bucket.len() >= self.config.top_k_per_bucket {
            bucket.sort_by(|a, b| {
                a.outcome
                    .score
                    .partial_cmp(&b.outcome.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let weakest = &bucket[0];
            if weakest.outcome.score >= finding.outcome.score {
                return Ok(InsertOutcome::BucketFullRejected {
                    weakest_kept_score: weakest.outcome.score,
                });
            }
            // Evict enough of the weakest to make room.
            let evict = bucket.len() + 1 - self.config.top_k_per_bucket;
            for f in bucket.iter().take(evict) {
                self.remove(&f.id)?;
            }
        }
        self.save(finding)?;
        Ok(InsertOutcome::Added)
    }

    /// Merges every finding from `other` into this corpus through the same
    /// signature dedup and top-K bucket retention as live inserts, so fleet
    /// workers' per-campaign corpora funnel into one store without
    /// duplicates or unbounded growth.
    ///
    /// Candidates are processed in (descending score, id) order, which makes
    /// the result independent of the order the source corpus happened to be
    /// written in: the strongest finding of each signature claims its slot
    /// first and everything weaker is judged against the final incumbents.
    /// Source findings that fail to load were already quarantined by
    /// `other`'s recovery pass and are counted, not fatal.
    pub fn merge(&self, other: &Corpus) -> Result<MergeReport, CorpusError> {
        let mut candidates = other.load_all()?;
        candidates.sort_by(|a, b| {
            b.outcome
                .score
                .partial_cmp(&a.outcome.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut report = MergeReport {
            source_quarantined: other.recovery().quarantined.len() as u64,
            ..MergeReport::default()
        };
        for finding in &candidates {
            match self.insert(finding)? {
                InsertOutcome::Added => report.added += 1,
                InsertOutcome::ReplacedWeaker { .. } => report.replaced += 1,
                InsertOutcome::DuplicateRejected { .. } => report.duplicates += 1,
                InsertOutcome::BucketFullRejected { .. } => report.bucket_full += 1,
            }
        }
        Ok(report)
    }

    /// Findings grouped by (CCA, mode), each group sorted by descending
    /// score — the shape reports want.
    #[allow(clippy::type_complexity)]
    pub fn buckets(&self) -> Result<BTreeMap<(String, String), Vec<Finding>>, CorpusError> {
        let mut out: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
        for finding in self.load_all()? {
            out.entry((
                finding.cca.name().to_string(),
                finding.mode.name().to_string(),
            ))
            .or_default()
            .push(finding);
        }
        for group in out.values_mut() {
            group.sort_by(|a, b| {
                b.outcome
                    .score
                    .partial_cmp(&a.outcome.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.id.cmp(&b.id))
            });
        }
        Ok(out)
    }

    /// Convenience: ids of one CCA's findings (any mode), sorted. Filters on
    /// the stored `cca` field rather than an id prefix — several CCA names
    /// are prefixes of others ("cubic" / "cubic-ns3-buggy").
    pub fn ids_for_cca(&self, cca: CcaKind) -> Result<Vec<String>, CorpusError> {
        let mut ids: Vec<String> = self
            .load_all()?
            .into_iter()
            .filter(|f| f.cca == cca)
            .map(|f| f.id)
            .collect();
        ids.sort();
        Ok(ids)
    }

    /// Replaces the stored finding `old_id` with `finding` (the minimization
    /// path). When the id is unchanged this is a plain overwrite; when
    /// minimization moved the finding into another signature bucket, the old
    /// file is removed and the finding goes through [`Corpus::insert`], so a
    /// stronger finding already stored under the new id is never clobbered.
    pub fn update(&self, old_id: &str, finding: &Finding) -> Result<InsertOutcome, CorpusError> {
        if finding.id == old_id {
            self.save(finding)?;
            return Ok(InsertOutcome::Added);
        }
        self.remove(old_id)?;
        self.insert(finding)
    }
}

/// Start time (procfs `stat` field 22, in clock ticks since boot) of the
/// given process, or `None` when the process does not exist or procfs is
/// unavailable. The comm field (2) may itself contain spaces and
/// parentheses, so fields are counted from the *last* `)`.
fn proc_starttime(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let after_comm = stat.rsplit_once(')')?.1;
    // `after_comm` starts at field 3 (state); field 22 is the 20th here.
    after_comm.split_whitespace().nth(19)?.parse().ok()
}

/// Whether a LOCK file's `pid[:starttime]` holder is provably dead.
///
/// * `pid:starttime` — dead if the PID is gone, or if it exists with a
///   different start time (the PID was recycled by an unrelated process).
/// * bare `pid` (legacy format, or written without procfs) — dead only if
///   the PID is gone; a live recycled PID cannot be distinguished from the
///   holder, so it conservatively counts as held.
/// * anything else, or no procfs — held.
fn holder_is_dead(holder: &str) -> bool {
    if !Path::new("/proc").is_dir() {
        return false;
    }
    let (pid_text, start_text) = match holder.split_once(':') {
        Some((pid, start)) => (pid, Some(start)),
        None => (holder, None),
    };
    let Ok(pid) = pid_text.parse::<u32>() else {
        return false;
    };
    match proc_starttime(pid) {
        // PID gone (or its stat unreadable, which for our purposes is the
        // same evidence /proc/<pid> existence gave the legacy format).
        None => !Path::new(&format!("/proc/{pid}")).exists(),
        Some(live_start) => match start_text.and_then(|s| s.parse::<u64>().ok()) {
            // Start-time mismatch: the holder died and its PID was recycled.
            Some(recorded) => recorded != live_start,
            // Legacy bare-PID lock naming a live PID: treat as held.
            None => false,
        },
    }
}

/// The startup recovery pass: sweep `*.tmp` staging files and quarantine
/// finding files that fail to parse or validate. Deterministic (paths are
/// sorted) so two recoveries of the same wreckage report identically.
fn recover(root: &Path) -> Result<RecoveryReport, CorpusError> {
    let findings = root.join("findings");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&findings)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    paths.sort();

    let mut report = RecoveryReport::default();
    for path in paths {
        match path.extension().and_then(|e| e.to_str()) {
            Some("tmp") => {
                std::fs::remove_file(&path)?;
                report.swept_tmp += 1;
            }
            Some("json") => {
                let intact = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| serde_json::from_str::<Finding>(&text).ok())
                    .map(|finding| finding.validate().is_ok())
                    .unwrap_or(false);
                if !intact {
                    let name = path
                        .file_name()
                        .expect("a *.json path has a file name")
                        .to_string_lossy()
                        .into_owned();
                    let quarantine = root.join("quarantine");
                    std::fs::create_dir_all(&quarantine)?;
                    std::fs::rename(&path, quarantine.join(&name))?;
                    report.quarantined.push(name);
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finding::{finding_id, GenomePayload, Provenance};
    use crate::signature::BehaviorSignature;
    use ccfuzz_core::campaign::paper_sim_base;
    use ccfuzz_core::campaign::FuzzMode;
    use ccfuzz_core::evaluate::EvalOutcome;
    use ccfuzz_core::genome::TrafficGenome;
    use ccfuzz_core::scoring::ScoringConfig;
    use ccfuzz_netsim::time::{SimDuration, SimTime};

    /// A synthetic finding whose outcome (and hence signature) is controlled
    /// by the caller — no simulation involved.
    fn synthetic(cca: CcaKind, score: f64, rto_count: u64) -> Finding {
        let duration = SimDuration::from_secs(2);
        let outcome = EvalOutcome {
            score,
            performance_score: score,
            rto_count,
            goodput_bps: 1e6,
            ..Default::default()
        };
        let signature = BehaviorSignature::from_outcome(&outcome, 12e6);
        let genome = TrafficGenome {
            timestamps: vec![SimTime::from_millis(100), SimTime::from_millis(200)],
            duration,
            max_packets: 100,
        };
        Finding {
            id: finding_id(cca, FuzzMode::Traffic, &signature),
            cca,
            mode: FuzzMode::Traffic,
            genome: GenomePayload::Traffic(genome),
            sim: paper_sim_base(duration),
            scoring: ScoringConfig::low_throughput_default(12e6),
            link_rate_bps: 12_000_000,
            outcome,
            signature,
            behavior_digest: 0,
            provenance: Provenance {
                seed: 1,
                generations: 1,
                total_evaluations: 1,
                minimized: false,
                original_score: score,
                original_packets: 2,
            },
            fairness: None,
        }
    }

    fn temp_corpus(config: CorpusConfig) -> (Corpus, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-corpus-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Corpus::open_with(&dir, config).unwrap(), dir)
    }

    #[test]
    fn save_load_roundtrip_preserves_the_finding() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        let finding = synthetic(CcaKind::Reno, 0.9, 4);
        corpus.save(&finding).unwrap();
        let loaded = corpus.get(&finding.id).unwrap();
        assert_eq!(loaded, finding);
        assert_eq!(corpus.load_all().unwrap(), vec![finding]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn insert_dedups_by_signature_keeping_the_stronger() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // Same signature bucket (scores 0.90 / 0.91 share the 5% bucket 18),
        // different scores.
        let weak = synthetic(CcaKind::Reno, 0.90, 4);
        let strong = synthetic(CcaKind::Reno, 0.912, 4);
        assert_eq!(weak.id, strong.id, "test premise: same signature");

        assert_eq!(corpus.insert(&weak).unwrap(), InsertOutcome::Added);
        assert_eq!(
            corpus.insert(&weak).unwrap(),
            InsertOutcome::DuplicateRejected {
                existing_score: 0.90
            }
        );
        assert_eq!(
            corpus.insert(&strong).unwrap(),
            InsertOutcome::ReplacedWeaker {
                previous_score: 0.90
            }
        );
        assert_eq!(corpus.get(&weak.id).unwrap().outcome.score, 0.912);
        assert_eq!(corpus.load_all().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bucket_retention_evicts_the_weakest() {
        let (corpus, dir) = temp_corpus(CorpusConfig {
            top_k_per_bucket: 2,
        });
        // Three distinct signatures (different rto bands).
        let a = synthetic(CcaKind::Reno, 0.5, 1);
        let b = synthetic(CcaKind::Reno, 0.7, 2);
        let c = synthetic(CcaKind::Reno, 0.9, 4);
        assert_eq!(corpus.insert(&a).unwrap(), InsertOutcome::Added);
        assert_eq!(corpus.insert(&b).unwrap(), InsertOutcome::Added);
        assert_eq!(corpus.insert(&c).unwrap(), InsertOutcome::Added);
        let kept = corpus.load_all().unwrap();
        assert_eq!(kept.len(), 2);
        assert!(
            kept.iter().all(|f| f.outcome.score > 0.6),
            "weakest was evicted"
        );

        // A finding weaker than everything kept is rejected.
        let d = synthetic(CcaKind::Reno, 0.4, 8);
        assert_eq!(
            corpus.insert(&d).unwrap(),
            InsertOutcome::BucketFullRejected {
                weakest_kept_score: 0.7
            }
        );
        // Other buckets (different CCA) are unaffected by retention.
        let e = synthetic(CcaKind::Cubic, 0.2, 1);
        assert_eq!(corpus.insert(&e).unwrap(), InsertOutcome::Added);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn update_never_clobbers_a_stronger_finding_on_id_collision() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // A and B share neither score bucket nor rto band initially.
        let a = synthetic(CcaKind::Reno, 0.91, 4);
        let b = synthetic(CcaKind::Reno, 0.5, 1);
        corpus.insert(&a).unwrap();
        corpus.insert(&b).unwrap();

        // Minimization moved B into A's signature bucket, but weaker than A.
        let mut b_minimized = synthetic(CcaKind::Reno, 0.905, 4);
        b_minimized.provenance.minimized = true;
        assert_eq!(b_minimized.id, a.id, "test premise: collision with A");

        let outcome = corpus.update(&b.id, &b_minimized).unwrap();
        assert_eq!(
            outcome,
            InsertOutcome::DuplicateRejected {
                existing_score: 0.91
            }
        );
        // A survives untouched; B's old file is gone.
        assert_eq!(corpus.get(&a.id).unwrap().outcome.score, 0.91);
        assert!(corpus.get(&b.id).is_err());

        // Same-id update is a plain overwrite.
        let a_refreshed = synthetic(CcaKind::Reno, 0.91, 4);
        assert_eq!(
            corpus.update(&a.id, &a_refreshed).unwrap(),
            InsertOutcome::Added
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn zero_top_k_is_clamped_not_a_panic() {
        let (corpus, dir) = temp_corpus(CorpusConfig {
            top_k_per_bucket: 0,
        });
        assert_eq!(
            corpus.insert(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap(),
            InsertOutcome::Added
        );
        assert_eq!(corpus.load_all().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ids_for_cca_does_not_conflate_prefix_named_ccas() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        corpus.insert(&synthetic(CcaKind::Cubic, 0.9, 4)).unwrap();
        corpus
            .insert(&synthetic(CcaKind::CubicNs3Buggy, 0.9, 4))
            .unwrap();
        let cubic = corpus.ids_for_cca(CcaKind::Cubic).unwrap();
        assert_eq!(cubic.len(), 1);
        assert!(cubic[0].starts_with("cubic-traffic-"));
        assert_eq!(corpus.ids_for_cca(CcaKind::CubicNs3Buggy).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn buckets_group_and_sort_by_score() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        corpus.insert(&synthetic(CcaKind::Reno, 0.5, 1)).unwrap();
        corpus.insert(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap();
        corpus.insert(&synthetic(CcaKind::Cubic, 0.7, 2)).unwrap();
        let buckets = corpus.buckets().unwrap();
        assert_eq!(buckets.len(), 2);
        let reno = &buckets[&("reno".to_string(), "traffic".to_string())];
        assert_eq!(reno.len(), 2);
        assert!(reno[0].outcome.score > reno[1].outcome.score);
        assert_eq!(corpus.ids_for_cca(CcaKind::Cubic).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn save_leaves_no_staging_files_behind() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        corpus.save(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap();
        let leftovers = std::fs::read_dir(corpus.findings_dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .and_then(|x| x.to_str())
                    == Some("tmp")
            })
            .count();
        assert_eq!(leftovers, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reopening_quarantines_corrupt_findings_and_sweeps_tmp_files() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        let good = synthetic(CcaKind::Reno, 0.9, 4);
        corpus.save(&good).unwrap();
        assert!(corpus.recovery().is_clean());

        // Simulate a crash predating atomic writes: one truncated finding,
        // one file of garbage, one abandoned staging file.
        let truncated = corpus.findings_dir().join("reno-traffic-truncated.json");
        let full = serde_json::to_string_pretty(&good).unwrap();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        let garbage = corpus.findings_dir().join("zz-garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        let stray = corpus.findings_dir().join("whatever.json.1234.tmp");
        std::fs::write(&stray, "half a write").unwrap();

        let reopened = Corpus::open(&dir).unwrap();
        let report = reopened.recovery();
        assert_eq!(report.swept_tmp, 1);
        assert_eq!(
            report.quarantined,
            vec![
                "reno-traffic-truncated.json".to_string(),
                "zz-garbage.json".to_string()
            ]
        );
        assert_eq!(report.total(), 3);
        assert!(!stray.exists());
        assert!(reopened.quarantine_dir().join("zz-garbage.json").exists());

        // The surviving corpus is fully usable.
        assert_eq!(reopened.load_all().unwrap(), vec![good]);
        // A second open finds nothing left to repair.
        assert!(Corpus::open(&dir).unwrap().recovery().is_clean());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn lock_excludes_a_second_holder_and_releases_on_drop() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        let guard = corpus.lock().unwrap();
        let err = corpus.lock().unwrap_err();
        assert!(err.0.contains("locked by process"), "{err}");
        drop(guard);
        let reguard = corpus.lock().unwrap();
        drop(reguard);
        assert!(!dir.join("LOCK").exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_stolen() {
        if !Path::new("/proc").is_dir() {
            return; // Staleness detection needs procfs.
        }
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // PID u32::MAX is above every kernel pid_max; no such process.
        std::fs::write(dir.join("LOCK"), format!("{}\n", u32::MAX)).unwrap();
        let guard = corpus.lock().expect("stale lock is stolen");
        drop(guard);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn recycled_pid_lock_is_recognised_as_dead_and_stolen() {
        if !Path::new("/proc").is_dir() {
            return; // Staleness detection needs procfs.
        }
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // The holder PID is this very test process (alive), but the recorded
        // start time cannot match: the "holder" died and its PID was
        // recycled. Start tick 0 belongs to a boot-time kernel task, never
        // to a userspace test runner.
        std::fs::write(dir.join("LOCK"), format!("{}:0\n", std::process::id())).unwrap();
        let guard = corpus.lock().expect("recycled-pid lock is stolen");
        drop(guard);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn matching_pid_and_starttime_is_held() {
        if !Path::new("/proc").is_dir() {
            return;
        }
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        let guard = corpus.lock().unwrap();
        // The lock file records our own pid:starttime; a second claimant
        // must see a live holder.
        let holder = std::fs::read_to_string(dir.join("LOCK")).unwrap();
        assert!(
            holder.trim().contains(':'),
            "lock records pid:starttime, got {holder:?}"
        );
        let err = corpus.lock().unwrap_err();
        assert!(err.0.contains("locked by process"), "{err}");
        drop(guard);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_bare_pid_lock_of_a_live_process_is_held() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        // Old-format lock naming a live PID: conservatively held, because a
        // bare PID cannot prove the holder died.
        std::fs::write(dir.join("LOCK"), format!("{}\n", std::process::id())).unwrap();
        let err = corpus.lock().unwrap_err();
        assert!(err.0.contains("locked by process"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unreadable_lock_content_is_treated_as_held() {
        let (corpus, dir) = temp_corpus(CorpusConfig::default());
        std::fs::write(dir.join("LOCK"), "definitely not a pid").unwrap();
        let err = corpus.lock().unwrap_err();
        assert!(err.0.contains("locked by process"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn merge_dedups_replaces_weaker_and_respects_retention() {
        let (dst, dst_dir) = temp_corpus(CorpusConfig {
            top_k_per_bucket: 2,
        });
        let src_dir = dst_dir.with_extension("src");
        let _ = std::fs::remove_dir_all(&src_dir);
        let src = Corpus::open_with(
            &src_dir,
            CorpusConfig {
                top_k_per_bucket: 8,
            },
        )
        .unwrap();

        // dst holds a weak and a mid finding (distinct signatures).
        dst.insert(&synthetic(CcaKind::Reno, 0.5, 1)).unwrap();
        dst.insert(&synthetic(CcaKind::Reno, 0.7, 2)).unwrap();
        // src: a stronger same-signature twin of the weak one, an exact
        // duplicate of the mid one, a new strongest finding, and one from a
        // different bucket.
        src.insert(&synthetic(CcaKind::Reno, 0.52, 1)).unwrap();
        src.insert(&synthetic(CcaKind::Reno, 0.7, 2)).unwrap();
        src.insert(&synthetic(CcaKind::Reno, 0.9, 4)).unwrap();
        src.insert(&synthetic(CcaKind::Cubic, 0.3, 1)).unwrap();

        let report = dst.merge(&src).unwrap();
        assert_eq!(report.candidates(), 4);
        assert_eq!(report.added, 2, "{report:?}"); // 0.9 reno + 0.3 cubic
        assert_eq!(report.duplicates, 1, "{report:?}"); // the 0.7 twin
        assert_eq!(report.source_quarantined, 0);
        // The strongest candidate landed first, so the 0.52 twin of the
        // weak incumbent was judged against a full {0.9, 0.7} bucket —
        // replaced or bucket-full, never both kept.
        assert_eq!(report.replaced + report.bucket_full, 1, "{report:?}");

        // Retention holds: the reno bucket keeps its strongest two.
        let buckets = dst.buckets().unwrap();
        let reno = &buckets[&("reno".to_string(), "traffic".to_string())];
        assert_eq!(reno.len(), 2);
        assert_eq!(reno[0].outcome.score, 0.9);
        assert_eq!(reno[1].outcome.score, 0.7);
        // The other bucket is untouched by reno's retention.
        assert_eq!(dst.ids_for_cca(CcaKind::Cubic).unwrap().len(), 1);

        // Merging the same source again is a no-op full of duplicates.
        let again = dst.merge(&src).unwrap();
        assert_eq!(again.added, 0);
        assert_eq!(again.replaced, 0);
        let _ = std::fs::remove_dir_all(dst_dir);
        let _ = std::fs::remove_dir_all(src_dir);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Merging corpora built from the same findings in ANY insertion
        /// order converges to the same surviving id set: the (descending
        /// score, id) candidate order makes merge outcomes a function of the
        /// finding *set*, not of write history.
        #[test]
        fn merge_result_is_independent_of_source_write_order(
            perm_seed in 0u64..64,
            top_k in 1usize..4,
        ) {
            use proptest::prelude::*;
            // Distinct scores and rto bands → distinct signatures, no ties.
            let mut pool: Vec<Finding> = (0..6)
                .map(|i| synthetic(CcaKind::Reno, 0.3 + 0.1 * i as f64, i))
                .collect();
            // A cheap deterministic permutation of the pool.
            let mut s = perm_seed;
            for i in (1..pool.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                pool.swap(i, (s >> 33) as usize % (i + 1));
            }

            let base = std::env::temp_dir().join(format!(
                "ccfuzz-merge-prop-{}-{:?}-{perm_seed}-{top_k}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&base);
            let src = Corpus::open_with(base.join("src"), CorpusConfig { top_k_per_bucket: 8 }).unwrap();
            for f in &pool {
                src.insert(f).unwrap();
            }
            let dst = Corpus::open_with(base.join("dst"), CorpusConfig { top_k_per_bucket: top_k }).unwrap();
            dst.merge(&src).unwrap();

            // Survivors are exactly the top_k strongest of the pool.
            let mut expected: Vec<&Finding> = pool.iter().collect();
            expected.sort_by(|a, b| b.outcome.score.partial_cmp(&a.outcome.score).unwrap());
            expected.truncate(top_k);
            let mut expected_ids: Vec<String> =
                expected.iter().map(|f| f.id.clone()).collect();
            expected_ids.sort();
            let mut got = dst.ids().unwrap();
            got.sort();
            prop_assert_eq!(got, expected_ids);
            let _ = std::fs::remove_dir_all(base);
        }

        /// A finding file truncated at ANY byte offset must never make the
        /// corpus unusable: reopening either keeps the finding (truncation
        /// only clipped insignificant bytes) or quarantines it, and
        /// `load_all` succeeds either way.
        #[test]
        fn truncated_finding_files_are_quarantined_never_fatal(cut in 0usize..2048) {
            use proptest::prelude::*;
            let (corpus, dir) = temp_corpus(CorpusConfig::default());
            let finding = synthetic(CcaKind::Reno, 0.9, 4);
            let path = corpus.save(&finding).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let cut = cut.min(bytes.len());
            std::fs::write(&path, &bytes[..cut]).unwrap();

            let reopened = Corpus::open(&dir).unwrap();
            let survivors = reopened.load_all().unwrap();
            if reopened.recovery().is_clean() {
                prop_assert_eq!(&survivors, &vec![finding]);
            } else {
                prop_assert_eq!(reopened.recovery().quarantined.len(), 1);
                prop_assert!(survivors.is_empty());
            }
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
