//! `ccfuzz` — the corpus command line.
//!
//! ```text
//! ccfuzz hunt     --cca reno [--mode traffic|link|...|workload] [--generations N] ...
//! ccfuzz minimize [--id ID | --all] [--retain F] [--budget N] ...
//! ccfuzz replay   [--cca NAME] [--strict] ...
//! ccfuzz report   ...
//! ccfuzz trace    ID [--buckets N] [--json PATH] [--csv PATH] ...
//! ```
//!
//! All subcommands take `--corpus DIR` (default `./corpus`). Run with no
//! arguments for full usage.
//!
//! Stdout carries only machine-consumable payloads (the hunt's finding as
//! JSON, replay/report tables, trace timelines); all progress and resolved
//! configuration chatter goes to stderr, so `ccfuzz hunt ... | jq .id`
//! works.

use ccfuzz_analysis::traceview;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::FuzzMode;
use ccfuzz_corpus::checkpoint::CampaignCheckpoint;
use ccfuzz_corpus::daemon::{http_request, resolve_daemon_addr, HuntSpec};
use ccfuzz_corpus::hunt::{hunt_controlled, HuntConfig, HuntControl, HuntOutcome};
use ccfuzz_corpus::minimize::{minimize_finding, MinimizeConfig};
use ccfuzz_corpus::replay::replay_findings;
use ccfuzz_corpus::report::corpus_report;
use ccfuzz_corpus::store::{Corpus, CorpusConfig, InsertOutcome};
use ccfuzz_netsim::time::SimDuration;
use ccfuzz_obs::HuntTelemetry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Exit code for a graceful shutdown (SIGINT/SIGTERM finished the in-flight
/// generation and wrote the final checkpoint). Distinct from runtime
/// failures (1) and usage errors (2) so wrappers can tell "interrupted but
/// resumable" from "broken".
const EXIT_INTERRUPTED: u8 = 3;

/// Raised by the SIGINT/SIGTERM handlers; the campaign polls it at
/// generation boundaries.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the graceful-shutdown handlers. Lives in the binary (the
/// library crates forbid unsafe code); uses libc's `signal` directly so no
/// new dependency is needed.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// CLI failures, split by exit code: usage errors (bad flags/values, with
/// the valid set named) exit 2; runtime errors (corpus IO, invalid stored
/// findings) exit 1.
enum CliError {
    Usage(String),
    Runtime(String),
}

/// Usage-error constructor used by the flag-parsing helpers.
fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

const USAGE: &str = "\
ccfuzz — CC-Fuzz findings corpus tool

USAGE:
    ccfuzz <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    hunt        Run a fuzzing campaign and persist its best finding
    resume      Resume a checkpointed hunt to its byte-identical conclusion
    minimize    Shrink stored finding(s) while retaining their score
    replay      Re-simulate the corpus and report score drift
    report      Print a per-bucket summary of the corpus
    trace       Replay one finding with tracing on and render its timeline
    submit      Queue a hunt on a ccfuzzd daemon (same flags as hunt)
    status      Poll a daemon for one hunt's (or every hunt's) status
    fetch       Print a completed daemon hunt's finding payload

COMMON OPTIONS:
    --corpus DIR        Corpus directory (default: ./corpus)
    --top-k N           Findings retained per (CCA, mode) bucket (default: 8)

Progress and configuration chatter go to stderr; stdout carries only the
subcommand's payload (hunt prints the finding as JSON).

Hunts stop gracefully on SIGINT/SIGTERM: the in-flight generation finishes,
the final checkpoint is written (with --checkpoint) and the process exits
with code 3. Campaign writers hold an exclusive corpus lock.

hunt OPTIONS:
    --cca NAME          reno | cubic | cubic-ns3-buggy | bbr |
                        bbr-probertt-on-rto | vegas | dctcp  (required)
    --mode MODE         traffic | link | fairness | aqm | topology | workload
                        (default: traffic)
    --flows LIST        Comma-separated CCAs: the flows competing in
                        fairness mode, or the CCA pool arriving flows draw
                        from in workload mode (default: the --cca flow
                        vs. reno)
    --qdisc KIND        Disciplines an aqm hunt explores: any | red | codel
                        (default: any)
    --hops N            Initial hop count of a topology hunt (default: 3)
    --generations N     GA generations (default: 5)
    --seconds S         Scenario duration in seconds (default: 3)
    --seed N            GA master seed (default: 1)
    --threads N         Evaluation worker threads (default: autodetect)
    --islands N         Override island count
    --population N      Override per-island population
    --telemetry PATH    Stream one JSONL progress snapshot per generation
                        to PATH
    --checkpoint PATH   Persist a resumable campaign checkpoint to PATH
    --checkpoint-every N
                        Checkpoint cadence in generations (default: 1;
                        0 = only the final checkpoint; needs --checkpoint)
    --panic-budget N    Caught evaluation panics tolerated before the
                        campaign aborts (default: 100; each panic is
                        persisted under <corpus>/panics/ either way)

resume OPTIONS:
    <PATH>              Checkpoint file written by hunt --checkpoint
    --corpus DIR        Override the corpus directory recorded in the
                        checkpoint
    --telemetry PATH    Stream one JSONL progress snapshot per generation

minimize OPTIONS:
    --id ID             Minimize one finding (default: all findings)
    --all               Minimize every stored finding
    --retain F          Score fraction to retain, 0..1 (default: 0.8)
    --budget N          Max simulations per finding (default: 300)

replay OPTIONS:
    --cca NAME          Replay against this CCA instead of the stored one
    --strict            Exit non-zero if any finding drifted

trace OPTIONS:
    <ID>                Finding to trace (first positional argument)
    --buckets N         Timeline rows per flow (default: 20)
    --json PATH         Also export the raw event stream as JSONL
    --csv PATH          Also export the raw event stream as CSV

submit OPTIONS (plus every hunt campaign flag):
    --daemon ADDR|DIR   Daemon address (host:port), or its root directory —
                        the address is then read from DIR/daemon.addr
                        (required; status and fetch take it too)
    --workers N         Worker processes to shard the islands across
                        (default: 1)
    --checkpoint-every N
                        Worker/campaign checkpoint cadence (default: 1)
    --panic-budget N    Panic budget; fleet restarts count against it
                        (default: 100)

status OPTIONS:
    [ID]                Hunt to query (default: list every hunt)

fetch OPTIONS:
    <ID>                Completed hunt whose finding payload to print; the
                        bytes match what `ccfuzz hunt` prints on stdout
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag VALUE` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(usage_err(format!("{flag} requires a value"))),
        },
    }
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| usage_err(format!("{flag}: invalid value `{v}`"))),
    }
}

fn parse_cca(name: &str) -> Result<CcaKind, CliError> {
    CcaKind::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = CcaKind::ALL.iter().map(|k| k.name()).collect();
        usage_err(format!(
            "unknown CCA `{name}` (known: {})",
            known.join(", ")
        ))
    })
}

/// The valid `--mode` set, for usage errors.
fn mode_names() -> String {
    FuzzMode::ALL
        .iter()
        .map(|m| m.name())
        .collect::<Vec<_>>()
        .join("|")
}

fn open_corpus_at(args: &[String], dir: String) -> Result<Corpus, CliError> {
    let top_k = parse_num(args, "--top-k", CorpusConfig::default().top_k_per_bucket)?;
    let corpus = Corpus::open_with(
        dir,
        CorpusConfig {
            top_k_per_bucket: top_k,
        },
    )
    .map_err(|e| CliError::Runtime(e.to_string()))?;
    let recovery = corpus.recovery();
    if !recovery.is_clean() {
        eprintln!(
            "corpus recovery: swept {} staging file(s), quarantined {} corrupt finding(s) into {}",
            recovery.swept_tmp,
            recovery.quarantined.len(),
            corpus.quarantine_dir().display()
        );
        for name in &recovery.quarantined {
            eprintln!("  quarantined: {name}");
        }
    }
    Ok(corpus)
}

fn open_corpus(args: &[String]) -> Result<Corpus, CliError> {
    let dir = flag_value(args, "--corpus")?.unwrap_or_else(|| "corpus".to_string());
    open_corpus_at(args, dir)
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(subcommand) = args.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "hunt" => cmd_hunt(rest),
        "resume" => cmd_resume(rest),
        "minimize" => cmd_minimize(rest),
        "replay" => cmd_replay(rest),
        "report" => cmd_report(rest),
        "trace" => cmd_trace(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "fetch" => cmd_fetch(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(usage_err(format!(
            "unknown subcommand `{other}`\n\n{USAGE}"
        ))),
    }
}

/// Parses the hunt-shaped flags (`--cca`, `--mode`, GA overrides, ...)
/// shared by `hunt` and `submit` into a fully resolved [`HuntConfig`].
fn parse_hunt_config(args: &[String]) -> Result<HuntConfig, CliError> {
    let cca = parse_cca(&flag_value(args, "--cca")?.ok_or_else(|| usage_err("requires --cca"))?)?;
    let mode = match flag_value(args, "--mode")? {
        None => FuzzMode::Traffic,
        Some(name) => FuzzMode::from_name(&name)
            .ok_or_else(|| usage_err(format!("--mode: `{name}` is not {}", mode_names())))?,
    };
    let generations: u32 = parse_num(args, "--generations", 5)?;
    let seconds: u64 = parse_num(args, "--seconds", 3)?;
    let seed: u64 = parse_num(args, "--seed", 1)?;

    let mut config = HuntConfig::quick(cca, mode, generations, seed);
    config.duration = SimDuration::from_secs(seconds.max(1));
    if let Some(flows) = flag_value(args, "--flows")? {
        if mode != FuzzMode::Fairness && mode != FuzzMode::Workload {
            return Err(usage_err(
                "--flows only applies to --mode fairness or --mode workload",
            ));
        }
        let flow_ccas = CcaKind::parse_list(&flows).map_err(usage_err)?;
        if mode == FuzzMode::Fairness && flow_ccas.len() < 2 {
            return Err(usage_err("--flows needs at least two comma-separated CCAs"));
        }
        if flow_ccas.is_empty() {
            return Err(usage_err("--flows needs at least one CCA"));
        }
        if mode == FuzzMode::Fairness && flow_ccas[0] != cca {
            return Err(usage_err(format!(
                "--flows starts with `{}` but --cca is `{}`; flow 0 is the algorithm \
                 under test, so the first --flows entry must match --cca",
                flow_ccas[0].name(),
                cca.name()
            )));
        }
        config.flow_ccas = flow_ccas;
    }
    if let Some(qdisc) = flag_value(args, "--qdisc")? {
        if mode != FuzzMode::Aqm {
            return Err(usage_err("--qdisc only applies to --mode aqm"));
        }
        config.qdisc = ccfuzz_core::scenario::QdiscChoice::from_name(&qdisc)
            .ok_or_else(|| usage_err(format!("--qdisc: `{qdisc}` is not any|red|codel")))?;
    }
    if let Some(hops) = flag_value(args, "--hops")? {
        if mode != FuzzMode::Topology {
            return Err(usage_err("--hops only applies to --mode topology"));
        }
        let hops: usize = hops
            .parse()
            .map_err(|_| usage_err("--hops: invalid value"))?;
        if hops == 0 {
            return Err(usage_err("--hops must be at least 1"));
        }
        config.hops = hops;
    }
    if let Some(threads) = flag_value(args, "--threads")? {
        let threads: usize = threads
            .parse()
            .map_err(|_| usage_err("--threads: invalid value"))?;
        if threads == 0 {
            return Err(usage_err("--threads must be at least 1"));
        }
        config.ga.threads = threads;
    }
    if let Some(islands) = flag_value(args, "--islands")? {
        config.ga.islands = islands
            .parse()
            .map_err(|_| usage_err("--islands: invalid value"))?;
    }
    if let Some(pop) = flag_value(args, "--population")? {
        config.ga.population_per_island = pop
            .parse()
            .map_err(|_| usage_err("--population: invalid value"))?;
    }
    Ok(config)
}

fn cmd_hunt(args: &[String]) -> Result<ExitCode, CliError> {
    let config = parse_hunt_config(args)?;
    let checkpoint_path = flag_value(args, "--checkpoint")?.map(PathBuf::from);
    if flag_present(args, "--checkpoint-every") && checkpoint_path.is_none() {
        return Err(usage_err("--checkpoint-every requires --checkpoint"));
    }
    let checkpoint_every: u32 = parse_num(args, "--checkpoint-every", 1)?;
    let panic_budget: u64 = parse_num(args, "--panic-budget", 100)?;

    let corpus = open_corpus(args)?;
    run_campaign(
        &corpus,
        &config,
        args,
        checkpoint_path,
        checkpoint_every,
        Some(panic_budget),
        None,
    )
}

/// Resolves the `--daemon` flag (required by the client subcommands) to a
/// `host:port` address.
fn daemon_addr(args: &[String]) -> Result<String, CliError> {
    let value = flag_value(args, "--daemon")?
        .ok_or_else(|| usage_err("requires --daemon ADDR|ROOT-DIR"))?;
    resolve_daemon_addr(&value).map_err(CliError::Runtime)
}

/// The positional (non-flag) argument, if any — e.g. a hunt id.
fn positional(args: &[String]) -> Option<String> {
    args.iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || !args[i - 1].starts_with("--")))
        .map(|(_, a)| a.clone())
}

/// `ccfuzz submit`: build the same hunt a local `ccfuzz hunt` would run and
/// queue it on a `ccfuzzd` daemon instead. Prints the assigned hunt id.
fn cmd_submit(args: &[String]) -> Result<ExitCode, CliError> {
    let config = parse_hunt_config(args)?;
    let workers: usize = parse_num(args, "--workers", 1)?;
    if workers == 0 {
        return Err(usage_err("--workers must be at least 1"));
    }
    let checkpoint_every: u32 = parse_num(args, "--checkpoint-every", 1)?;
    let panic_budget: u64 = parse_num(args, "--panic-budget", 100)?;
    let spec = HuntSpec {
        config,
        workers,
        checkpoint_every,
        panic_budget: Some(panic_budget),
    };
    let body = serde_json::to_string(&spec)
        .map_err(|e| CliError::Runtime(format!("serializing hunt spec: {e}")))?;
    let addr = daemon_addr(args)?;
    let (code, reply) =
        http_request(&addr, "POST", "/hunts", Some(&body)).map_err(CliError::Runtime)?;
    if code != 200 {
        return Err(CliError::Runtime(format!(
            "daemon rejected the hunt ({code}): {}",
            reply.trim()
        )));
    }
    eprintln!(
        "submitted to {addr}: cca={} mode={} generations={} seed={} workers={workers}",
        spec.config.cca.name(),
        spec.config.mode.name(),
        spec.config.ga.generations,
        spec.config.ga.seed
    );
    print!("{reply}");
    Ok(ExitCode::SUCCESS)
}

/// `ccfuzz status [ID]`: one hunt's status, or every hunt's.
fn cmd_status(args: &[String]) -> Result<ExitCode, CliError> {
    let addr = daemon_addr(args)?;
    let path = match positional(args) {
        Some(id) => format!("/hunts/{id}"),
        None => "/hunts".to_string(),
    };
    let (code, reply) = http_request(&addr, "GET", &path, None).map_err(CliError::Runtime)?;
    if code != 200 {
        return Err(CliError::Runtime(format!(
            "daemon returned {code}: {}",
            reply.trim()
        )));
    }
    print!("{reply}");
    Ok(ExitCode::SUCCESS)
}

/// `ccfuzz fetch ID`: a completed hunt's finding payload — the exact bytes
/// `ccfuzz hunt` would have printed to stdout.
fn cmd_fetch(args: &[String]) -> Result<ExitCode, CliError> {
    let addr = daemon_addr(args)?;
    let id = positional(args).ok_or_else(|| usage_err("fetch requires a hunt id"))?;
    let (code, reply) = http_request(&addr, "GET", &format!("/hunts/{id}/findings"), None)
        .map_err(CliError::Runtime)?;
    if code != 200 {
        return Err(CliError::Runtime(format!(
            "daemon returned {code}: {}",
            reply.trim()
        )));
    }
    print!("{reply}");
    Ok(ExitCode::SUCCESS)
}

/// `ccfuzz resume PATH`: load a checkpoint, verify it, and run the campaign
/// it describes to completion (or the next interruption). The resumed
/// trajectory — findings, digests, stdout payload — is byte-identical to
/// what the uninterrupted hunt would have produced.
fn cmd_resume(args: &[String]) -> Result<ExitCode, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| {
            let pos = args.iter().position(|x| x == *a).unwrap_or(0);
            pos == 0 || !args[pos - 1].starts_with("--")
        })
        .cloned()
        .ok_or_else(|| usage_err("resume requires a checkpoint path"))?;
    let checkpoint =
        CampaignCheckpoint::load(&path).map_err(|e| CliError::Runtime(e.to_string()))?;
    let dir = flag_value(args, "--corpus")?.unwrap_or_else(|| checkpoint.corpus_dir.clone());
    let corpus = open_corpus_at(args, dir)?;
    let config = checkpoint.config.clone();
    if checkpoint.completed {
        eprintln!("checkpoint {path} is already complete; replaying its final state");
    } else {
        eprintln!(
            "resuming {path}: next generation {}/{}, {} evaluation(s) done",
            checkpoint.state.next_generation(),
            config.ga.generations,
            checkpoint.state.evaluations()
        );
    }
    run_campaign(
        &corpus,
        &config,
        args,
        Some(PathBuf::from(path)),
        checkpoint.checkpoint_every,
        checkpoint.panic_budget,
        Some(checkpoint),
    )
}

/// The shared hunt/resume engine: takes the corpus lock, prints the
/// resolved campaign, installs the graceful-shutdown handlers, runs the
/// controlled hunt and reports its outcome.
fn run_campaign(
    corpus: &Corpus,
    config: &HuntConfig,
    args: &[String],
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u32,
    panic_budget: Option<u64>,
    resume: Option<CampaignCheckpoint>,
) -> Result<ExitCode, CliError> {
    let mode = config.mode;
    // Campaign writers are exclusive: a second hunt/minimize/resume against
    // the same corpus fails fast instead of interleaving writes.
    let _lock = corpus
        .lock()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    // Print the fully resolved campaign before running, so a hunt is
    // reproducible from its log alone. All of this is chatter: it goes to
    // stderr so stdout stays a clean JSON payload.
    let campaign = config.campaign();
    eprintln!(
        "hunting: cca={} mode={} duration={}s seed={}",
        config.cca.name(),
        mode.name(),
        config.duration.as_secs_f64(),
        config.ga.seed
    );
    if mode == FuzzMode::Fairness {
        let flows: Vec<&str> = campaign.flow_ccas.iter().map(|c| c.name()).collect();
        eprintln!(
            "  flows: [{}] (max {} concurrent)",
            flows.join(", "),
            campaign.max_flows
        );
    }
    if mode == FuzzMode::Aqm {
        eprintln!("  qdisc search space: {:?}", campaign.qdisc_choice);
    }
    if mode == FuzzMode::Topology {
        eprintln!(
            "  topology: {} initial hop(s), pool [{}]",
            campaign.topology_hops,
            campaign
                .flow_ccas
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if mode == FuzzMode::Workload {
        eprintln!(
            "  workload: arrival CCA pool [{}], up to {} background elephant(s)",
            campaign
                .flow_ccas
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join(", "),
            campaign.max_flows
        );
    }
    eprintln!(
        "  ga: islands={} population/island={} generations={} crossover={:.2} \
         migration={:.2}@{} k_elite={} threads={}",
        config.ga.islands,
        config.ga.population_per_island,
        config.ga.generations,
        config.ga.crossover_fraction,
        config.ga.migration_fraction,
        config.ga.migration_interval,
        config.ga.k_elite,
        config.ga.threads
    );
    eprintln!(
        "  scoring: objective={:?} perf_weight={} trace_weight={} reference={:.1} Mbps",
        campaign.scoring.objective,
        campaign.scoring.performance_weight,
        campaign.scoring.trace_weight,
        campaign.scoring.reference_rate_bps / 1e6
    );

    // Live telemetry: a per-generation status line on stderr, plus (with
    // --telemetry) a JSONL snapshot stream.
    let mut telemetry = HuntTelemetry::new().with_status_line();
    if let Some(path) = flag_value(args, "--telemetry")? {
        let sink = std::fs::File::create(&path)
            .map_err(|e| CliError::Runtime(format!("--telemetry {path}: {e}")))?;
        telemetry = telemetry.with_sink(Box::new(sink));
        eprintln!("  telemetry: streaming snapshots to {path}");
    }
    telemetry
        .metrics
        .recovered_files
        .add(corpus.recovery().total());
    if let Some(path) = &checkpoint_path {
        eprintln!(
            "  checkpoint: {} every {} generation(s)",
            path.display(),
            checkpoint_every.max(1)
        );
    }

    install_signal_handlers();
    let outcome = hunt_controlled(
        corpus,
        config,
        Some(&telemetry),
        HuntControl {
            shutdown: Some(&SHUTDOWN),
            checkpoint_path: checkpoint_path.clone(),
            checkpoint_every,
            panic_budget,
            resume,
        },
    )
    .map_err(|e| CliError::Runtime(e.to_string()))?;

    let caught = telemetry.metrics.panics_caught.get();
    if caught > 0 {
        eprintln!(
            "caught {caught} evaluation panic(s); artifacts persisted under {}",
            corpus.root().join("panics").display()
        );
    }
    let (finding, decision) = match outcome {
        HuntOutcome::Completed { finding, decision } => (*finding, decision),
        HuntOutcome::Interrupted {
            next_generation,
            evaluations,
        } => {
            eprintln!("{}", telemetry.phase_report());
            eprintln!(
                "interrupted: stopped gracefully after {evaluations} evaluation(s) at a \
                 resumable boundary (next generation {next_generation})"
            );
            match &checkpoint_path {
                Some(path) => eprintln!("resume with: ccfuzz resume {}", path.display()),
                None => eprintln!("no --checkpoint was set; this run cannot be resumed"),
            }
            return Ok(ExitCode::from(EXIT_INTERRUPTED));
        }
        HuntOutcome::PanicBudgetExhausted {
            panics,
            next_generation,
        } => {
            eprintln!("{}", telemetry.phase_report());
            return Err(CliError::Runtime(format!(
                "panic budget exhausted: {panics} evaluation panic(s) caught, budget {}; \
                 artifacts are under {}, campaign stopped before generation {next_generation}",
                panic_budget.unwrap_or(0),
                corpus.root().join("panics").display()
            )));
        }
    };
    eprintln!("{}", telemetry.phase_report());
    eprintln!(
        "best trace: score={:.6} (perf={:.6}, trace={:.6}) goodput={:.3} Mbps packets={}",
        finding.outcome.score,
        finding.outcome.performance_score,
        finding.outcome.trace_score,
        finding.outcome.goodput_bps / 1e6,
        finding.genome.packet_count()
    );
    if let ccfuzz_corpus::finding::GenomePayload::Scenario(scenario) = &finding.genome {
        if let Some(gene) = &scenario.qdisc {
            eprintln!(
                "  qdisc: {} ecn={}",
                gene.discipline.label(),
                if gene.ecn { "on" } else { "off" }
            );
        }
    }
    if let ccfuzz_corpus::finding::GenomePayload::Topology(genome) = &finding.genome {
        eprintln!("  evolved topology ({} hop(s)):", genome.hop_count());
        for line in genome.detail_table().lines() {
            eprintln!("    {line}");
        }
    }
    if let ccfuzz_corpus::finding::GenomePayload::Workload(genome) = &finding.genome {
        eprintln!(
            "  workload: {:.1} flows/s, sizes {}..{} pkt (shape {:.2}), {} elephant(s), pool [{}]",
            genome.arrivals.process.rate_per_sec(),
            genome.arrivals.size.min_packets,
            genome.arrivals.size.max_packets,
            genome.arrivals.size.shape,
            genome.elephant_count(),
            genome
                .cca_pool
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if let Some(fairness) = &finding.fairness {
        for (i, cca) in fairness.per_flow_cca.iter().enumerate() {
            eprintln!(
                "  flow {i}: {cca} goodput={:.3} Mbps delivered={}",
                fairness.per_flow_goodput_bps.get(i).copied().unwrap_or(0.0) / 1e6,
                fairness.per_flow_delivered.get(i).copied().unwrap_or(0)
            );
        }
        eprintln!(
            "  jain_index={:.4} max_starvation={:.3}s",
            fairness.jain_index, fairness.max_starvation_secs
        );
    }
    match decision {
        InsertOutcome::Added => eprintln!("corpus: added {}", finding.id),
        InsertOutcome::ReplacedWeaker { previous_score } => eprintln!(
            "corpus: replaced weaker duplicate of {} (previous score {previous_score:.6})",
            finding.id
        ),
        InsertOutcome::DuplicateRejected { existing_score } => eprintln!(
            "corpus: duplicate of {} (stored score {existing_score:.6} is stronger or equal)",
            finding.id
        ),
        InsertOutcome::BucketFullRejected { weakest_kept_score } => {
            eprintln!("corpus: bucket full, weakest kept finding scores {weakest_kept_score:.6}")
        }
    }
    // The machine-readable payload: the finding itself, as one JSON object.
    let json = serde_json::to_string(&finding)
        .map_err(|e| CliError::Runtime(format!("serializing finding: {e}")))?;
    println!("{json}");
    Ok(ExitCode::SUCCESS)
}

/// `ccfuzz trace ID`: replay one stored finding with the structured trace
/// recorder installed and render per-flow timelines plus the per-hop queue
/// table. Optionally exports the raw event stream as JSONL / CSV.
fn cmd_trace(args: &[String]) -> Result<ExitCode, CliError> {
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| {
            // Reject a flag's value masquerading as the positional id.
            let pos = args.iter().position(|x| x == *a).unwrap_or(0);
            pos == 0 || !args[pos - 1].starts_with("--")
        })
        .cloned()
        .ok_or_else(|| usage_err("trace requires a finding id (see `ccfuzz report`)"))?;
    let buckets: usize = parse_num(args, "--buckets", traceview::DEFAULT_TIMELINE_BUCKETS)?;
    if buckets == 0 {
        return Err(usage_err("--buckets must be at least 1"));
    }
    let corpus = open_corpus(args)?;
    let finding = corpus
        .get(&id)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    finding
        .validate()
        .map_err(|e| CliError::Runtime(format!("finding {id}: {e}")))?;

    eprintln!(
        "tracing {id}: cca={} mode={} score={:.6}",
        finding.cca.name(),
        finding.mode.name(),
        finding.outcome.score
    );
    let (outcome, digest, trace) = finding.replay_traced();
    if digest != finding.behavior_digest {
        return Err(CliError::Runtime(format!(
            "traced replay of {id} diverged from the stored behaviour \
             (digest {digest:#018x} != stored {:#018x}); the simulator has \
             changed since this finding was recorded",
            finding.behavior_digest
        )));
    }
    eprintln!(
        "  replayed score {:.6} (stored {:.6}), digest verified",
        outcome.score, finding.outcome.score
    );
    if trace.overwritten > 0 {
        eprintln!(
            "  note: ring kept the newest {} of {} events ({} evicted)",
            trace.events.len(),
            trace.total_observed(),
            trace.overwritten
        );
    }

    println!(
        "trace {}: {} events over {:.3}s ({} flows, {} hops)",
        id,
        trace.events.len(),
        trace
            .events
            .last()
            .map(|r| r.at.as_secs_f64())
            .unwrap_or(0.0),
        traceview::flow_count(&trace),
        traceview::hop_count(&trace),
    );
    for flow in 0..traceview::flow_count(&trace) as u32 {
        println!("\nflow {flow} timeline:");
        print!("{}", traceview::flow_timeline_table(&trace, flow, buckets));
    }
    println!("\nper-hop queues:");
    print!("{}", traceview::hop_queue_table(&trace));

    if let Some(path) = flag_value(args, "--json")? {
        std::fs::write(&path, traceview::trace_to_jsonl(&trace))
            .map_err(|e| CliError::Runtime(format!("--json {path}: {e}")))?;
        eprintln!("wrote JSONL event stream to {path}");
    }
    if let Some(path) = flag_value(args, "--csv")? {
        std::fs::write(&path, traceview::trace_to_csv(&trace))
            .map_err(|e| CliError::Runtime(format!("--csv {path}: {e}")))?;
        eprintln!("wrote CSV event stream to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_minimize(args: &[String]) -> Result<ExitCode, CliError> {
    let corpus = open_corpus(args)?;
    // Minimization rewrites findings in place, so it is a campaign writer.
    let _lock = corpus
        .lock()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let retain: f64 = parse_num(args, "--retain", 0.8)?;
    if !(0.0..=1.0).contains(&retain) {
        return Err(usage_err("--retain must be within [0, 1]"));
    }
    let budget: usize = parse_num(args, "--budget", 300)?;
    let cfg = MinimizeConfig {
        retain_fraction: retain,
        max_evaluations: budget,
        ..Default::default()
    };

    let ids: Vec<String> = match flag_value(args, "--id")? {
        Some(id) => vec![id],
        None => {
            let mut ids = corpus.ids().map_err(|e| CliError::Runtime(e.to_string()))?;
            ids.sort();
            if ids.is_empty() {
                println!("corpus is empty, nothing to minimize");
                return Ok(ExitCode::SUCCESS);
            }
            ids
        }
    };

    for id in ids {
        let finding = corpus
            .get(&id)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let (minimized, report) = minimize_finding(&finding, &cfg);
        // `update` removes the old file and, if the id moved into an
        // occupied signature bucket, keeps whichever finding is stronger.
        let stored = corpus
            .update(&id, &minimized)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        println!(
            "{id}: {} -> {} packets, score {:.6} -> {:.6} (threshold {:.6}, {} evals){}",
            report.original_packets,
            report.minimized_packets,
            report.original_score,
            report.minimized_score,
            report.threshold,
            report.evaluations,
            if minimized.id != id {
                match &stored {
                    InsertOutcome::DuplicateRejected { existing_score } => format!(
                        "; behaviour bucket moved onto {} (stronger, score {existing_score:.6}) — \
                         minimized copy dropped",
                        minimized.id
                    ),
                    InsertOutcome::ReplacedWeaker { previous_score } => format!(
                        "; behaviour bucket moved, replaced weaker {} (score {previous_score:.6})",
                        minimized.id
                    ),
                    InsertOutcome::BucketFullRejected { weakest_kept_score } => format!(
                        "; behaviour bucket moved but that bucket is full of stronger findings \
                         (weakest kept {weakest_kept_score:.6}) — minimized copy dropped"
                    ),
                    InsertOutcome::Added => {
                        format!("; behaviour bucket moved, renamed to {}", minimized.id)
                    }
                }
            } else {
                String::new()
            }
        );
        for pass in &report.passes {
            println!("    {pass}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, CliError> {
    let corpus = open_corpus(args)?;
    let cca_override = match flag_value(args, "--cca")? {
        Some(name) => Some(parse_cca(&name)?),
        None => None,
    };
    let findings = corpus
        .load_all()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    // Validate every stored configuration before burning simulations on
    // it: a hand-edited or corrupted finding produces a descriptive error
    // naming the finding, not a simulator panic mid-replay.
    for finding in &findings {
        finding
            .validate()
            .map_err(|e| CliError::Runtime(format!("finding {}: {e}", finding.id)))?;
    }
    let report = replay_findings(&findings, cca_override);
    print!("{}", report.to_text());
    if flag_present(args, "--strict") && !report.is_clean() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_report(args: &[String]) -> Result<ExitCode, CliError> {
    let corpus = open_corpus(args)?;
    print!(
        "{}",
        corpus_report(&corpus).map_err(|e| CliError::Runtime(e.to_string()))?
    );
    Ok(ExitCode::SUCCESS)
}
