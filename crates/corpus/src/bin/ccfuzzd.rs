//! `ccfuzzd` — the distributed hunt daemon.
//!
//! ```text
//! ccfuzzd --root DIR [--bind ADDR]
//! ccfuzzd worker --connect ADDR --worker K     (internal)
//! ```
//!
//! The daemon serves a minimal HTTP/1.1 API (submit hunts, list/poll
//! status, stream telemetry JSONL, fetch findings) and executes queued
//! hunts one at a time, sharding each across `workers` worker processes —
//! respawned from this same binary via the hidden `worker` subcommand. The
//! actual listening address is published to `<root>/daemon.addr` so
//! clients can find a port-0 daemon.
//!
//! SIGTERM/SIGINT drain gracefully: the listener stops accepting, the
//! running hunt (if any) stops at its next generation boundary with a
//! final checkpoint, and the process exits 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Raised by the SIGINT/SIGTERM handlers; the accept loop, the runner
/// thread and the running campaign all poll it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the graceful-shutdown handlers. Lives in the binary (the
/// library crates forbid unsafe code); uses libc's `signal` directly so no
/// new dependency is needed.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

const USAGE: &str = "\
ccfuzzd — CC-Fuzz distributed hunt daemon

USAGE:
    ccfuzzd --root DIR [--bind ADDR]

OPTIONS:
    --root DIR      Daemon state directory: per-hunt checkpoints, telemetry
                    streams and corpora live under <root>/hunts/, completed
                    hunts merge into the shared corpus at <root>/corpus,
                    and the listening address is published to
                    <root>/daemon.addr (required)
    --bind ADDR     Listen address (default: 127.0.0.1:0 — an OS-assigned
                    port; read <root>/daemon.addr for the actual one)

HTTP API (drive it with `ccfuzz submit/status/fetch`):
    POST /hunts               Submit a hunt spec (JSON), returns {\"id\": ...}
    GET  /hunts               List every hunt's status
    GET  /hunts/ID            One hunt's status
    GET  /hunts/ID/stream     The hunt's per-generation telemetry JSONL
    GET  /hunts/ID/findings   A completed hunt's finding payload (the exact
                              bytes `ccfuzz hunt` would print)

SIGTERM/SIGINT drain gracefully: the running hunt stops at its next
generation boundary and the daemon exits 0.
";

fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} requires a value")),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.first().map(String::as_str) == Some("worker") {
        return run_worker(&args[1..]);
    }
    if matches!(
        args.first().map(String::as_str),
        Some("--help") | Some("-h") | Some("help")
    ) {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    let Some(root) = flag_value(args, "--root")? else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let bind = flag_value(args, "--bind")?.unwrap_or_else(|| "127.0.0.1:0".to_string());
    install_signal_handlers();
    ccfuzz_corpus::daemon::serve(&PathBuf::from(root), &bind, &SHUTDOWN)?;
    Ok(ExitCode::SUCCESS)
}

/// The hidden `worker` subcommand the coordinator spawns: connect back to
/// the coordinator socket and serve one island shard. Not for human use.
fn run_worker(args: &[String]) -> Result<ExitCode, String> {
    let addr = flag_value(args, "--connect")?
        .ok_or_else(|| "worker requires --connect ADDR".to_string())?;
    let worker: usize = flag_value(args, "--worker")?
        .ok_or_else(|| "worker requires --worker K".to_string())?
        .parse()
        .map_err(|_| "--worker: invalid value".to_string())?;
    ccfuzz_corpus::worker::run_worker(&addr, worker)?;
    Ok(ExitCode::SUCCESS)
}
