//! # ccfuzz-corpus
//!
//! The persistence layer that turns one-off fuzzing campaigns into a
//! regression system: a findings corpus, trace minimization and
//! deterministic replay.
//!
//! * [`finding`] — the self-contained, replayable [`Finding`](finding::Finding)
//!   record: genome + CCA + full simulation/scoring config + score breakdown
//!   + behaviour signature + provenance.
//! * [`signature`] — quantized behaviour fingerprints used to deduplicate
//!   near-identical findings.
//! * [`store`] — the on-disk corpus: JSON files, signature dedup, top-K
//!   retention per (CCA, mode) bucket, atomic writes, startup recovery and
//!   an exclusive campaign lock.
//! * [`checkpoint`] — persistent campaign checkpoints (resume an
//!   interrupted hunt to a byte-identical trajectory) and panic artifacts.
//! * [`minimize`] — delta-debugging plus value-level shrinking that keeps a
//!   configurable fraction of the original score.
//! * [`replay`] — deterministic regression replay with a byte-stable report.
//! * [`hunt`] — campaign driver that persists what it finds.
//! * [`report`] — corpus summary tables.
//! * [`proto`] / [`worker`] / [`daemon`] — the distributed orchestration
//!   layer: the length-prefixed JSON frame protocol, the island-shard
//!   worker process, and the coordinator + `ccfuzzd` HTTP daemon that
//!   shards campaigns across supervised worker fleets.
//!
//! The `ccfuzz` binary (`hunt` / `minimize` / `replay` / `report` /
//! `submit` / `status` / `fetch`) is the command-line face of this crate,
//! and `ccfuzzd` is the hunt daemon; see the repository README for a
//! walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod finding;
pub mod hunt;
pub mod minimize;
pub mod proto;
pub mod replay;
pub mod report;
pub mod signature;
pub mod store;
pub mod worker;

pub use checkpoint::{
    hunt_config_digest, CampaignCheckpoint, PanicFinding, TelemetryCounters, CHECKPOINT_SCHEMA,
};
pub use daemon::{
    hunt_distributed, serve, DistOptions, DistProgress, HuntSpec, HuntState, HuntStatus,
};
pub use finding::{Finding, GenomePayload, Provenance};
pub use hunt::{hunt, hunt_controlled, HuntConfig, HuntControl, HuntOutcome};
pub use minimize::{
    minimize_finding, minimize_link, minimize_traffic, MinimizeConfig, MinimizeReport,
};
pub use replay::{replay_corpus, replay_findings, ReplayReport};
pub use report::corpus_report;
pub use signature::BehaviorSignature;
pub use store::{
    Corpus, CorpusConfig, CorpusError, CorpusLock, InsertOutcome, MergeReport, RecoveryReport,
};
pub use worker::run_worker;
