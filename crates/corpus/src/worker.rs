//! The worker-process side of a distributed hunt.
//!
//! A worker is a `ccfuzzd worker --connect ADDR --worker K` process. It
//! connects to the per-hunt coordinator socket, receives its
//! [`Assign`]ment, builds the *full* fuzzer from the campaign seed (island
//! initialisation is a pure per-island fork, so construction is cheap and
//! byte-identical across the fleet) and then reacts — strictly
//! message-driven — to the coordinator's frames: evaluate its island
//! range, evolve past a boundary, exchange migrants through the
//! coordinator, persist a [`WorkerCheckpoint`] on cadence and finally ship
//! its snapshot back.
//!
//! Checkpoints are kept two-deep per worker: the round in flight plus the
//! previously committed one, because the coordinator only commits a
//! boundary once *every* worker acknowledged it. A respawned worker is
//! therefore always told a generation for which its checkpoint file exists.

use crate::checkpoint::hunt_config_digest;
use crate::hunt::HuntConfig;
use crate::proto::Hello;
use crate::proto::{
    decode, recv_frame, send_frame, Assign, CheckpointDone, Evaluate, Fatal, Finish, Proceed,
    ASSIGN, CHECKPOINT_DONE, EVALUATE, FATAL, FINAL, FINISH, HELLO, INBOUND, MIGRANTS, PROCEED,
    REPORT,
};
use ccfuzz_core::campaign::FuzzMode;
use ccfuzz_core::checkpoint::SnapshotPayload;
use ccfuzz_core::evaluate::SimEvaluator;
use ccfuzz_core::fuzzer::{Fuzzer, FuzzerSnapshot};
use ccfuzz_core::genome::Genome;
use ccfuzz_core::shard::MigrantBatch;
use ccfuzz_obs::{write_atomic, HuntTelemetry};
use serde::{Deserialize, Serialize};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

/// Worker-checkpoint file schema version.
pub const WORKER_CHECKPOINT_SCHEMA: u32 = 1;

/// One worker's resumable state at a committed generation boundary. Only
/// the worker's own island range is authoritative; the rest of the
/// embedded snapshot is the stale view the worker stopped advancing (the
/// coordinator owns all cross-island state and keeps its own committed
/// copy).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerCheckpoint {
    /// File schema version ([`WORKER_CHECKPOINT_SCHEMA`]).
    pub schema: u32,
    /// The worker index that wrote this checkpoint.
    pub worker: usize,
    /// Fleet size the campaign was sharded for.
    pub n_workers: usize,
    /// FNV-1a digest of the hunt config, verified on resume so a worker
    /// never restores state from a different campaign.
    pub config_digest: u64,
    /// The generation boundary this state captures.
    pub generation: u32,
    /// The mode-erased fuzzer state.
    pub state: SnapshotPayload,
}

impl WorkerCheckpoint {
    /// The file name a worker's checkpoint for a boundary persists under.
    pub fn file_name(worker: usize, generation: u32) -> String {
        format!("worker-{worker:02}-gen-{generation:06}.json")
    }

    /// Atomically writes the checkpoint into `dir` (created if needed) and
    /// prunes this worker's older checkpoints down to the last two
    /// boundaries.
    pub fn write_into(&self, dir: &Path) -> Result<u64, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating checkpoint dir {}: {e}", dir.display()))?;
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        let path = dir.join(Self::file_name(self.worker, self.generation));
        let bytes = write_atomic(&path, (json + "\n").as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        prune_checkpoints(dir, self.worker, self.generation);
        Ok(bytes)
    }

    /// Loads a worker checkpoint and verifies schema, identity and digest.
    pub fn load(
        path: &Path,
        worker: usize,
        n_workers: usize,
        config: &HuntConfig,
        generation: u32,
    ) -> Result<WorkerCheckpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading worker checkpoint {}: {e}", path.display()))?;
        let ck: WorkerCheckpoint = serde_json::from_str(&text).map_err(|e| e.to_string())?;
        if ck.schema != WORKER_CHECKPOINT_SCHEMA {
            return Err(format!(
                "worker checkpoint schema {} is not the supported {WORKER_CHECKPOINT_SCHEMA}",
                ck.schema
            ));
        }
        if ck.worker != worker || ck.n_workers != n_workers {
            return Err(format!(
                "worker checkpoint belongs to worker {}/{} but this worker is {worker}/{n_workers}",
                ck.worker, ck.n_workers
            ));
        }
        if ck.config_digest != hunt_config_digest(config) {
            return Err("worker checkpoint was written for a different hunt configuration".into());
        }
        if ck.generation != generation {
            return Err(format!(
                "worker checkpoint captures generation {} but the coordinator committed {generation}",
                ck.generation
            ));
        }
        ck.state.validate()?;
        Ok(ck)
    }
}

/// Deletes this worker's checkpoint files older than the previous boundary,
/// keeping the newest two. Best-effort: pruning failures never fail a
/// checkpoint round.
fn prune_checkpoints(dir: &Path, worker: usize, newest: u32) {
    let prefix = format!("worker-{worker:02}-gen-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut generations: Vec<(u32, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            let gen: u32 = name
                .strip_prefix(&prefix)?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            (gen <= newest).then(|| (gen, entry.path()))
        })
        .collect();
    generations.sort_by_key(|(gen, _)| *gen);
    if generations.len() > 2 {
        for (_, path) in &generations[..generations.len() - 2] {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Runs one worker process to completion: connect, handshake, serve the
/// coordinator until `finish`. On error, a best-effort `fatal` frame is
/// sent before returning so the coordinator can log the cause.
pub fn run_worker(addr: &str, worker: usize) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connecting to coordinator {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let result = serve_coordinator(&mut stream, worker);
    if let Err(message) = &result {
        let _ = send_frame(
            &mut stream,
            FATAL,
            &Fatal {
                message: message.clone(),
            },
        );
    }
    result
}

fn serve_coordinator(stream: &mut TcpStream, worker: usize) -> Result<(), String> {
    send_frame(stream, HELLO, &Hello { worker }).map_err(|e| format!("handshake: {e}"))?;
    let (kind, body) = recv_frame(stream).map_err(|e| format!("awaiting assignment: {e}"))?;
    if kind != ASSIGN {
        return Err(format!("expected `{ASSIGN}` frame, got `{kind}`"));
    }
    let assign: Assign = decode(&kind, &body)?;
    if assign.worker != worker {
        return Err(format!(
            "assigned as worker {} but spawned as {worker}",
            assign.worker
        ));
    }
    let campaign = assign.config.campaign();
    // Per-mode dispatch mirrors `hunt_controlled`: the evaluator and the
    // worker-local telemetry must outlive the fuzzer borrowing them.
    let telemetry = HuntTelemetry::new();
    let evaluator = campaign.evaluator();
    match assign.config.mode {
        FuzzMode::Traffic => {
            let resume = load_resume(&assign, SnapshotPayload::into_traffic)?;
            let fuzzer = campaign.build_traffic_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Traffic)
        }
        FuzzMode::Link => {
            let resume = load_resume(&assign, SnapshotPayload::into_link)?;
            let fuzzer = campaign.build_link_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Link)
        }
        FuzzMode::Fairness => {
            let resume = load_resume(&assign, SnapshotPayload::into_scenario)?;
            let fuzzer = campaign.build_fairness_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Scenario)
        }
        FuzzMode::Aqm => {
            let resume = load_resume(&assign, SnapshotPayload::into_scenario)?;
            let fuzzer = campaign.build_aqm_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Scenario)
        }
        FuzzMode::Topology => {
            let resume = load_resume(&assign, SnapshotPayload::into_topology)?;
            let fuzzer = campaign.build_topology_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Topology)
        }
        FuzzMode::Workload => {
            let resume = load_resume(&assign, SnapshotPayload::into_workload)?;
            let fuzzer = campaign.build_workload_fuzzer(&evaluator, resume, Some(&telemetry))?;
            shard_loop(stream, &assign, fuzzer, SnapshotPayload::Workload)
        }
    }
}

/// Loads the committed worker checkpoint named by the assignment, if any.
fn load_resume<G>(
    assign: &Assign,
    unwrap: fn(SnapshotPayload) -> Result<FuzzerSnapshot<G>, String>,
) -> Result<Option<FuzzerSnapshot<G>>, String> {
    let Some(generation) = assign.resume_generation else {
        return Ok(None);
    };
    let path = Path::new(&assign.checkpoint_dir)
        .join(WorkerCheckpoint::file_name(assign.worker, generation));
    let ck = WorkerCheckpoint::load(
        &path,
        assign.worker,
        assign.n_workers,
        &assign.config,
        generation,
    )?;
    Ok(Some(unwrap(ck.state)?))
}

/// The worker's reactive generation loop: everything after the assignment.
fn shard_loop<G>(
    stream: &mut TcpStream,
    assign: &Assign,
    mut fuzzer: Fuzzer<'_, G, SimEvaluator>,
    wrap: fn(FuzzerSnapshot<G>) -> SnapshotPayload,
) -> Result<(), String>
where
    G: Genome + Serialize + Deserialize,
    SimEvaluator: ccfuzz_core::evaluate::Evaluator<G>,
{
    let (start, end) = (assign.island_start, assign.island_end);
    let dir = PathBuf::from(&assign.checkpoint_dir);
    loop {
        let (kind, body) = recv_frame(stream).map_err(|e| format!("coordinator link: {e}"))?;
        match kind.as_str() {
            EVALUATE => {
                let msg: Evaluate = decode(&kind, &body)?;
                if msg.generation != fuzzer.next_generation() {
                    return Err(format!(
                        "asked to evaluate generation {} but the local boundary is {}",
                        msg.generation,
                        fuzzer.next_generation()
                    ));
                }
                let report = fuzzer.shard_evaluate(start, end);
                send_frame(stream, REPORT, &report).map_err(|e| format!("sending report: {e}"))?;
            }
            PROCEED => {
                let msg: Proceed = decode(&kind, &body)?;
                fuzzer.shard_evolve(start, end);
                if msg.migrate {
                    let outbound = fuzzer.shard_collect_migrants(start, end);
                    send_frame(stream, MIGRANTS, &outbound)
                        .map_err(|e| format!("sending migrants: {e}"))?;
                    let (kind, body) =
                        recv_frame(stream).map_err(|e| format!("awaiting migrants: {e}"))?;
                    if kind != INBOUND {
                        return Err(format!("expected `{INBOUND}` frame, got `{kind}`"));
                    }
                    let inbound: Vec<MigrantBatch<G>> = decode(&kind, &body)?;
                    fuzzer.shard_apply_migrants(inbound);
                }
                let boundary = msg.generation + 1;
                fuzzer.set_next_generation(boundary);
                if msg.checkpoint {
                    WorkerCheckpoint {
                        schema: WORKER_CHECKPOINT_SCHEMA,
                        worker: assign.worker,
                        n_workers: assign.n_workers,
                        config_digest: hunt_config_digest(&assign.config),
                        generation: boundary,
                        state: wrap(fuzzer.snapshot()),
                    }
                    .write_into(&dir)?;
                    send_frame(
                        stream,
                        CHECKPOINT_DONE,
                        &CheckpointDone {
                            generation: boundary,
                        },
                    )
                    .map_err(|e| format!("acknowledging checkpoint: {e}"))?;
                }
            }
            FINISH => {
                let msg: Finish = decode(&kind, &body)?;
                fuzzer.set_next_generation(msg.next_generation);
                send_frame(stream, FINAL, &wrap(fuzzer.snapshot()))
                    .map_err(|e| format!("sending final snapshot: {e}"))?;
                return Ok(());
            }
            other => return Err(format!("unexpected `{other}` frame from coordinator")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_cca::CcaKind;
    use ccfuzz_core::campaign::FuzzMode;
    use ccfuzz_core::checkpoint::CampaignControl;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-worker-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config() -> HuntConfig {
        let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Traffic, 3, 5);
        config.ga.islands = 2;
        config.ga.population_per_island = 3;
        config.ga.threads = 2;
        config.duration = ccfuzz_netsim::time::SimDuration::from_secs(1);
        config
    }

    fn snapshot_for(config: &HuntConfig) -> SnapshotPayload {
        let run = config
            .campaign()
            .run_traffic_controlled(None, CampaignControl::default())
            .unwrap();
        SnapshotPayload::Traffic(run.final_snapshot)
    }

    #[test]
    fn worker_checkpoints_roundtrip_verify_and_prune() {
        let dir = temp_dir("roundtrip");
        let config = tiny_config();
        let state = snapshot_for(&config);
        let digest = hunt_config_digest(&config);
        for generation in 1..=4u32 {
            WorkerCheckpoint {
                schema: WORKER_CHECKPOINT_SCHEMA,
                worker: 1,
                n_workers: 2,
                config_digest: digest,
                generation,
                state: state.clone(),
            }
            .write_into(&dir)
            .unwrap();
        }
        // Only the newest two boundaries survive pruning.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                WorkerCheckpoint::file_name(1, 3),
                WorkerCheckpoint::file_name(1, 4)
            ]
        );

        let path = dir.join(WorkerCheckpoint::file_name(1, 4));
        let ck = WorkerCheckpoint::load(&path, 1, 2, &config, 4).unwrap();
        assert_eq!(ck.generation, 4);
        assert_eq!(ck.state, state);

        // Identity and config mismatches are refused.
        assert!(WorkerCheckpoint::load(&path, 0, 2, &config, 4).is_err());
        assert!(WorkerCheckpoint::load(&path, 1, 3, &config, 4).is_err());
        assert!(WorkerCheckpoint::load(&path, 1, 2, &config, 3).is_err());
        let mut other = config.clone();
        other.ga.seed += 1;
        let err = WorkerCheckpoint::load(&path, 1, 2, &other, 4).unwrap_err();
        assert!(err.contains("different hunt configuration"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
