//! The coordinator ⇄ worker wire protocol for distributed hunts.
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Every frame is an envelope
//! object `{"kind": "...", "body": ...}`; the `kind` string selects the
//! message and `body` carries its payload. Genome-generic payloads
//! ([`ccfuzz_core::ShardReport`], migrant batches, final snapshots) are
//! encoded and decoded at the call sites, so the framing layer itself stays
//! non-generic and the envelope can be routed before the payload type is
//! known.
//!
//! The protocol is strictly coordinator-driven: a worker only ever reacts
//! to the frame it just received, so the coordinator alone decides when a
//! generation is evaluated, when the migration ring runs and when the
//! campaign stops. That is what makes a fixed worker count deterministic —
//! there is no racing on who reaches a boundary first.
//!
//! ```text
//!   coordinator                                worker
//!       |  <--------------- hello{worker} ------- |   (handshake)
//!       |  ---------------- assign{...} --------> |
//!       |  ---------------- evaluate{g} --------> |
//!       |  <--------------- report{...} --------- |   (per generation)
//!       |  ---------------- proceed{g,m,c} -----> |
//!       |  <--------------- migrants[...] ------- |   (migration rounds)
//!       |  ---------------- inbound[...] -------> |
//!       |  <--------------- checkpoint_done{g} -- |   (checkpoint rounds)
//!       |  ---------------- finish{g} ----------> |
//!       |  <--------------- final{snapshot} ----- |
//! ```

use crate::hunt::HuntConfig;
use serde::value::{map_get, Value};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. Far above any real snapshot;
/// this guards against a corrupt length prefix allocating the moon.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Worker → coordinator handshake; identifies which shard connected.
pub const HELLO: &str = "hello";
/// Coordinator → worker: campaign config and island range assignment.
pub const ASSIGN: &str = "assign";
/// Coordinator → worker: evaluate the given generation.
pub const EVALUATE: &str = "evaluate";
/// Worker → coordinator: the shard report for an evaluated generation.
pub const REPORT: &str = "report";
/// Coordinator → worker: evolve past the generation boundary.
pub const PROCEED: &str = "proceed";
/// Worker → coordinator: migrants leaving this worker's islands.
pub const MIGRANTS: &str = "migrants";
/// Coordinator → worker: migrants routed into this worker's islands.
pub const INBOUND: &str = "inbound";
/// Worker → coordinator: the periodic checkpoint was persisted.
pub const CHECKPOINT_DONE: &str = "checkpoint_done";
/// Coordinator → worker: the campaign stopped; send the final snapshot.
pub const FINISH: &str = "finish";
/// Worker → coordinator: the worker's final fuzzer snapshot.
pub const FINAL: &str = "final";
/// Worker → coordinator: the worker hit an unrecoverable error.
pub const FATAL: &str = "fatal";

/// Writes one `{kind, body}` frame: length prefix, JSON payload, flush.
pub fn send_frame<W: Write, T: Serialize + ?Sized>(
    w: &mut W,
    kind: &str,
    body: &T,
) -> io::Result<()> {
    let envelope = Value::Map(vec![
        ("kind".to_string(), Value::Str(kind.to_string())),
        ("body".to_string(), body.to_value()),
    ]);
    let json = serde_json::to_string(&envelope)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("encoding frame: {e}")))?;
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame and splits the envelope into `(kind, body)`. An
/// `UnexpectedEof` error here is how a dead peer announces itself.
pub fn recv_frame<R: Read>(r: &mut R) -> io::Result<(String, Value)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not UTF-8: {e}"),
        )
    })?;
    let value: Value = serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not JSON: {e}"),
        )
    })?;
    let map = value
        .as_map("frame envelope")
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let kind: String = map_get(map, "kind")
        .and_then(String::from_value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let body = map_get(map, "body")
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        .clone();
    Ok((kind, body))
}

/// Decodes a frame body into its typed message, prefixing errors with the
/// frame kind for diagnosis.
pub fn decode<T: Deserialize>(kind: &str, body: &Value) -> Result<T, String> {
    T::from_value(body).map_err(|e| format!("decoding `{kind}` frame: {e}"))
}

/// Worker → coordinator handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The worker index this process was spawned as.
    pub worker: usize,
}

/// Coordinator → worker: everything a worker needs to build its fuzzer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// The full hunt configuration; every worker builds the *complete*
    /// fuzzer from it (island init is a pure per-island fork of the seed),
    /// then only ever advances its own island range.
    pub config: HuntConfig,
    /// This worker's index.
    pub worker: usize,
    /// Fleet size (after clamping to the island count).
    pub n_workers: usize,
    /// First global island index this worker owns.
    pub island_start: usize,
    /// One past the last global island index this worker owns.
    pub island_end: usize,
    /// Worker-checkpoint cadence in generations (0 = never).
    pub checkpoint_every: u32,
    /// Directory the worker persists its checkpoints into.
    pub checkpoint_dir: String,
    /// Resume from the worker checkpoint committed at this generation
    /// boundary instead of constructing a fresh population.
    pub resume_generation: Option<u32>,
}

/// Coordinator → worker: evaluate generation `generation`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evaluate {
    /// The generation to evaluate; must match the worker's boundary.
    pub generation: u32,
}

/// Coordinator → worker: the fleet survives the boundary after
/// `generation`; evolve (and migrate / checkpoint when flagged).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Proceed {
    /// The generation that was just absorbed.
    pub generation: u32,
    /// Run the migration exchange at this boundary.
    pub migrate: bool,
    /// Persist a worker checkpoint at this boundary and acknowledge it.
    pub checkpoint: bool,
}

/// Worker → coordinator: the checkpoint for a boundary was persisted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointDone {
    /// The generation boundary the persisted checkpoint captures.
    pub generation: u32,
}

/// Coordinator → worker: the campaign stopped; align the boundary and
/// reply with the final snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finish {
    /// The boundary the coordinator stopped at.
    pub next_generation: u32,
}

/// Worker → coordinator: an unrecoverable worker-side error.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fatal {
    /// What went wrong.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_cca::CcaKind;
    use ccfuzz_core::campaign::FuzzMode;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let mut buf = Vec::new();
        let hello = Hello { worker: 3 };
        send_frame(&mut buf, HELLO, &hello).unwrap();
        let proceed = Proceed {
            generation: 7,
            migrate: true,
            checkpoint: false,
        };
        send_frame(&mut buf, PROCEED, &proceed).unwrap();

        let mut cursor = Cursor::new(buf);
        let (kind, body) = recv_frame(&mut cursor).unwrap();
        assert_eq!(kind, HELLO);
        assert_eq!(decode::<Hello>(&kind, &body).unwrap(), hello);
        let (kind, body) = recv_frame(&mut cursor).unwrap();
        assert_eq!(kind, PROCEED);
        assert_eq!(decode::<Proceed>(&kind, &body).unwrap(), proceed);
        // The stream is fully drained: the next read reports EOF, which is
        // exactly the signal the supervisor treats as worker death.
        let err = recv_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn assign_roundtrips_with_its_embedded_config() {
        let assign = Assign {
            config: HuntConfig::quick(CcaKind::Bbr, FuzzMode::Topology, 4, 33),
            worker: 1,
            n_workers: 2,
            island_start: 1,
            island_end: 2,
            checkpoint_every: 1,
            checkpoint_dir: "/tmp/does-not-matter".to_string(),
            resume_generation: Some(2),
        };
        let mut buf = Vec::new();
        send_frame(&mut buf, ASSIGN, &assign).unwrap();
        let (kind, body) = recv_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(kind, ASSIGN);
        assert_eq!(decode::<Assign>(&kind, &body).unwrap(), assign);
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        // A length prefix beyond the guard is refused before allocating.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&(u32::MAX).to_be_bytes());
        bogus.extend_from_slice(b"{}");
        let err = recv_frame(&mut Cursor::new(bogus)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // A frame cut mid-payload surfaces as EOF, not a hang or a panic.
        let mut buf = Vec::new();
        send_frame(&mut buf, HELLO, &Hello { worker: 0 }).unwrap();
        buf.truncate(buf.len() - 1);
        let err = recv_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Valid JSON that is not an envelope is rejected as InvalidData.
        let payload = b"[1,2,3]";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        let err = recv_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
