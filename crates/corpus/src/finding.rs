//! The [`Finding`]: one self-contained, replayable adversarial scenario.
//!
//! A finding bundles everything needed to re-run a discovered trace against
//! the simulator years later: the genome, the CCA under test, the complete
//! simulation configuration, the scoring configuration, the recorded score
//! breakdown, the behaviour signature used for deduplication, and provenance
//! (seed, generations, whether it has been minimized).

use crate::signature::BehaviorSignature;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::evaluate::{EvalOutcome, SimEvaluator};
use ccfuzz_core::genome::{Genome, LinkGenome, TrafficGenome};
use ccfuzz_core::scoring::{ScoringConfig, TraceScoreInputs};
use ccfuzz_netsim::config::SimConfig;
use serde::{Deserialize, Serialize};

/// The evolved trace, in either of the paper's two fuzzing modes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GenomePayload {
    /// A bottleneck service curve (link fuzzing).
    Link(LinkGenome),
    /// A cross-traffic injection pattern (traffic fuzzing).
    Traffic(TrafficGenome),
}

impl GenomePayload {
    /// The fuzzing mode this genome belongs to.
    pub fn mode(&self) -> FuzzMode {
        match self {
            GenomePayload::Link(_) => FuzzMode::Link,
            GenomePayload::Traffic(_) => FuzzMode::Traffic,
        }
    }

    /// Number of packets in the genome.
    pub fn packet_count(&self) -> usize {
        match self {
            GenomePayload::Link(g) => g.packet_count(),
            GenomePayload::Traffic(g) => g.packet_count(),
        }
    }

    /// Checks the genome's internal invariants.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            GenomePayload::Link(g) => g.validate(),
            GenomePayload::Traffic(g) => g.validate(),
        }
    }
}

/// Where a finding came from and what has happened to it since.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Master GA seed of the campaign that discovered the finding.
    pub seed: u64,
    /// Generations the campaign ran.
    pub generations: u32,
    /// Simulations the campaign spent.
    pub total_evaluations: u64,
    /// Whether the genome has been through trace minimization.
    pub minimized: bool,
    /// The score before minimization (equals the current score otherwise).
    pub original_score: f64,
    /// Packet count before minimization.
    pub original_packets: u64,
}

/// One persistent, replayable finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable identifier: `{cca}-{mode}-{signature key as hex}`.
    pub id: String,
    /// Algorithm under test.
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// The adversarial trace.
    pub genome: GenomePayload,
    /// Complete base simulation settings (the evaluator overwrites the link
    /// model / cross-traffic fields from the genome at replay time).
    pub sim: SimConfig,
    /// Scoring configuration the score was computed under.
    pub scoring: ScoringConfig,
    /// Bottleneck rate: fixed rate in traffic mode, average rate in link mode.
    pub link_rate_bps: u64,
    /// Recorded score breakdown at discovery (or after minimization).
    pub outcome: EvalOutcome,
    /// Quantized behaviour fingerprint (the dedup key).
    pub signature: BehaviorSignature,
    /// Full behaviour digest of the recorded run (`RunStats::digest`): the
    /// replay-determinism fingerprint. Replay verifies this, which catches
    /// simulator behaviour changes even when they leave the score intact.
    pub behavior_digest: u64,
    /// Discovery and minimization history.
    pub provenance: Provenance,
}

/// Formats a finding id from its parts.
pub fn finding_id(cca: CcaKind, mode: FuzzMode, signature: &BehaviorSignature) -> String {
    let mode = match mode {
        FuzzMode::Link => "link",
        FuzzMode::Traffic => "traffic",
    };
    format!("{}-{}-{:010x}", cca.name(), mode, signature.key())
}

impl Finding {
    /// Wraps a campaign's best genome into a persistent finding.
    pub fn from_campaign(
        campaign: &Campaign,
        genome: GenomePayload,
        outcome: EvalOutcome,
        total_evaluations: u64,
    ) -> Finding {
        let signature = BehaviorSignature::from_outcome(&outcome, campaign.link_rate_bps as f64);
        let mut finding = Finding {
            id: finding_id(campaign.cca, campaign.mode, &signature),
            cca: campaign.cca,
            mode: campaign.mode,
            sim: campaign.sim.clone(),
            scoring: campaign.scoring,
            link_rate_bps: campaign.link_rate_bps,
            outcome,
            signature,
            behavior_digest: 0,
            provenance: Provenance {
                seed: campaign.ga.seed,
                generations: campaign.ga.generations,
                total_evaluations,
                minimized: false,
                original_score: outcome.score,
                original_packets: genome.packet_count() as u64,
            },
            genome,
        };
        finding.behavior_digest = finding.compute_behavior_digest();
        finding
    }

    /// The simulator-backed evaluator that reproduces this finding's scores.
    pub fn evaluator(&self) -> SimEvaluator {
        SimEvaluator::new(self.sim.clone(), self.cca, self.scoring, self.link_rate_bps)
    }

    /// Re-runs the stored genome through one fresh deterministic simulation,
    /// optionally against a different CCA, returning both the scored outcome
    /// and the run's behaviour digest. One simulation serves both purposes —
    /// this is the hot path of `ccfuzz replay`.
    pub fn replay_run(&self, cca: Option<CcaKind>) -> (EvalOutcome, u64) {
        let mut evaluator = self.evaluator();
        if let Some(cca) = cca {
            evaluator.cca = cca;
        }
        match &self.genome {
            GenomePayload::Link(g) => {
                let result = evaluator.simulate_link(g, false);
                let outcome =
                    EvalOutcome::from_result(&evaluator.scoring, &result, evaluator.base.mss, None);
                (outcome, result.stats.digest())
            }
            GenomePayload::Traffic(g) => {
                let result = evaluator.simulate_traffic(g, false);
                let inputs = TraceScoreInputs {
                    traffic_packets: g.packet_count(),
                    traffic_max_packets: g.max_packets,
                    traffic_dropped: result.stats.cross_dropped,
                };
                let outcome = EvalOutcome::from_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    Some(inputs),
                );
                (outcome, result.stats.digest())
            }
        }
    }

    /// Re-evaluates the stored genome from scratch (a fresh deterministic
    /// simulation), optionally against a different CCA.
    pub fn evaluate_against(&self, cca: Option<CcaKind>) -> EvalOutcome {
        self.replay_run(cca).0
    }

    /// Re-simulates the stored genome and digests the run (see
    /// `RunStats::digest`): a determinism fingerprint that is stronger than
    /// score equality.
    pub fn compute_behavior_digest(&self) -> u64 {
        self.replay_run(None).1
    }

    /// Checks internal consistency (genome invariants, id/signature match,
    /// mode/genome agreement).
    pub fn validate(&self) -> Result<(), String> {
        self.genome.validate()?;
        if self.genome.mode() != self.mode {
            return Err(format!(
                "finding {} mode {:?} does not match its genome",
                self.id, self.mode
            ));
        }
        let expected = finding_id(self.cca, self.mode, &self.signature);
        if self.id != expected {
            return Err(format!(
                "finding id `{}` does not match signature (`{expected}`)",
                self.id
            ));
        }
        self.sim.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_core::fuzzer::GaParams;
    use ccfuzz_netsim::time::SimDuration;

    fn tiny_campaign(mode: FuzzMode) -> Campaign {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        Campaign::paper_standard(mode, CcaKind::Reno, SimDuration::from_secs(2), ga)
    }

    #[test]
    fn finding_from_traffic_campaign_is_valid_and_replayable() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        finding.validate().unwrap();
        assert!(finding.id.starts_with("reno-traffic-"));
        assert!(!finding.provenance.minimized);
        // Replay reproduces the recorded outcome exactly (determinism).
        let replayed = finding.evaluate_against(None);
        assert_eq!(replayed, finding.outcome);
        assert_eq!(finding.behavior_digest, finding.compute_behavior_digest());
    }

    #[test]
    fn validate_catches_mode_mismatch_and_bad_id() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        let mut bad = finding.clone();
        bad.mode = FuzzMode::Link;
        assert!(bad.validate().is_err());
        let mut bad = finding.clone();
        bad.id = "nonsense".into();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn evaluate_against_other_cca_differs_in_general() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        let as_cubic = finding.evaluate_against(Some(CcaKind::Cubic));
        // Not asserting inequality of scores (they may coincide), but the
        // call must succeed and produce a finite score.
        assert!(as_cubic.score.is_finite());
    }
}
