//! The [`Finding`]: one self-contained, replayable adversarial scenario.
//!
//! A finding bundles everything needed to re-run a discovered trace against
//! the simulator years later: the genome, the CCA under test, the complete
//! simulation configuration, the scoring configuration, the recorded score
//! breakdown, the behaviour signature used for deduplication, and provenance
//! (seed, generations, whether it has been minimized).

use crate::signature::BehaviorSignature;
use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::{Campaign, FuzzMode};
use ccfuzz_core::evaluate::{EvalOutcome, SimEvaluator};
use ccfuzz_core::genome::{Genome, LinkGenome, TrafficGenome};
use ccfuzz_core::scenario::ScenarioGenome;
use ccfuzz_core::scoring::{fairness_breakdown, ScoringConfig, TraceScoreInputs};
use ccfuzz_core::topology::TopologyGenome;
use ccfuzz_core::workload::WorkloadGenome;
use ccfuzz_netsim::config::SimConfig;
use ccfuzz_netsim::simtrace::SimTrace;
use serde::{Deserialize, Serialize};

/// The evolved trace/scenario, in any of the fuzzing modes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GenomePayload {
    /// A bottleneck service curve (link fuzzing).
    Link(LinkGenome),
    /// A cross-traffic injection pattern (traffic fuzzing).
    Traffic(TrafficGenome),
    /// A multi-flow scenario (fairness fuzzing).
    Scenario(ScenarioGenome),
    /// A multi-hop parking-lot topology (topology fuzzing).
    Topology(TopologyGenome),
    /// A dynamic-arrival workload (workload fuzzing).
    Workload(WorkloadGenome),
}

impl GenomePayload {
    /// The fuzzing mode this genome belongs to. Scenario genomes serve two
    /// modes (fairness and aqm); this returns the one the payload's own
    /// shape implies, see [`GenomePayload::matches_mode`] for validation.
    pub fn mode(&self) -> FuzzMode {
        match self {
            GenomePayload::Link(_) => FuzzMode::Link,
            GenomePayload::Traffic(_) => FuzzMode::Traffic,
            GenomePayload::Scenario(g) => {
                if g.qdisc.is_some() {
                    FuzzMode::Aqm
                } else {
                    FuzzMode::Fairness
                }
            }
            GenomePayload::Topology(_) => FuzzMode::Topology,
            GenomePayload::Workload(_) => FuzzMode::Workload,
        }
    }

    /// `true` when this payload is a legal genome for `mode`: scenario
    /// payloads serve both multi-flow modes, the others are 1:1.
    pub fn matches_mode(&self, mode: FuzzMode) -> bool {
        match self {
            GenomePayload::Link(_) => mode == FuzzMode::Link,
            GenomePayload::Traffic(_) => mode == FuzzMode::Traffic,
            GenomePayload::Scenario(_) => {
                matches!(mode, FuzzMode::Fairness | FuzzMode::Aqm)
            }
            GenomePayload::Topology(_) => mode == FuzzMode::Topology,
            GenomePayload::Workload(_) => mode == FuzzMode::Workload,
        }
    }

    /// Number of packets in the genome (cross-traffic packets for
    /// scenarios and topologies).
    pub fn packet_count(&self) -> usize {
        match self {
            GenomePayload::Link(g) => g.packet_count(),
            GenomePayload::Traffic(g) => g.packet_count(),
            GenomePayload::Scenario(g) => g.packet_count(),
            GenomePayload::Topology(g) => g.packet_count(),
            GenomePayload::Workload(g) => g.packet_count(),
        }
    }

    /// Checks the genome's internal invariants.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            GenomePayload::Link(g) => g.validate(),
            GenomePayload::Traffic(g) => g.validate(),
            GenomePayload::Scenario(g) => g.validate(),
            GenomePayload::Topology(g) => g.validate(),
            GenomePayload::Workload(g) => g.validate(),
        }
    }
}

/// Recorded per-flow fairness results of a scenario finding, so reports can
/// show the flow split without re-simulating.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FairnessSummary {
    /// CCA name of each flow, in flow order.
    pub per_flow_cca: Vec<String>,
    /// Sink-side goodput of each flow over its active interval, bits/s.
    pub per_flow_goodput_bps: Vec<f64>,
    /// Distinct packets each flow delivered.
    pub per_flow_delivered: Vec<u64>,
    /// Jain's index over the per-flow goodput.
    pub jain_index: f64,
    /// Longest zero-delivery interval of any flow, seconds.
    pub max_starvation_secs: f64,
}

/// Where a finding came from and what has happened to it since.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Master GA seed of the campaign that discovered the finding.
    pub seed: u64,
    /// Generations the campaign ran.
    pub generations: u32,
    /// Simulations the campaign spent.
    pub total_evaluations: u64,
    /// Whether the genome has been through trace minimization.
    pub minimized: bool,
    /// The score before minimization (equals the current score otherwise).
    pub original_score: f64,
    /// Packet count before minimization.
    pub original_packets: u64,
}

/// One persistent, replayable finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable identifier: `{cca}-{mode}-{signature key as hex}`.
    pub id: String,
    /// Algorithm under test.
    pub cca: CcaKind,
    /// Fuzzing mode.
    pub mode: FuzzMode,
    /// The adversarial trace.
    pub genome: GenomePayload,
    /// Complete base simulation settings (the evaluator overwrites the link
    /// model / cross-traffic fields from the genome at replay time).
    pub sim: SimConfig,
    /// Scoring configuration the score was computed under.
    pub scoring: ScoringConfig,
    /// Bottleneck rate: fixed rate in traffic mode, average rate in link mode.
    pub link_rate_bps: u64,
    /// Recorded score breakdown at discovery (or after minimization).
    pub outcome: EvalOutcome,
    /// Quantized behaviour fingerprint (the dedup key).
    pub signature: BehaviorSignature,
    /// Full behaviour digest of the recorded run (`RunStats::digest`): the
    /// replay-determinism fingerprint. Replay verifies this, which catches
    /// simulator behaviour changes even when they leave the score intact.
    pub behavior_digest: u64,
    /// Discovery and minimization history.
    pub provenance: Provenance,
    /// Per-flow fairness results (fairness-mode findings only).
    pub fairness: Option<FairnessSummary>,
}

// Serde is written by hand (not derived) so the optional `fairness` field is
// omitted when absent and tolerated when missing: findings committed before
// the multi-flow engine existed deserialize unchanged and re-serialize
// byte-identically.
impl Serialize for Finding {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("cca".to_string(), self.cca.to_value()),
            ("mode".to_string(), self.mode.to_value()),
            ("genome".to_string(), self.genome.to_value()),
            ("sim".to_string(), self.sim.to_value()),
            ("scoring".to_string(), self.scoring.to_value()),
            ("link_rate_bps".to_string(), self.link_rate_bps.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
            ("signature".to_string(), self.signature.to_value()),
            (
                "behavior_digest".to_string(),
                self.behavior_digest.to_value(),
            ),
            ("provenance".to_string(), self.provenance.to_value()),
        ];
        if let Some(fairness) = &self.fairness {
            fields.push(("fairness".to_string(), fairness.to_value()));
        }
        serde::value::Value::Map(fields)
    }
}

impl Deserialize for Finding {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        use serde::value::map_get;
        let m = v.as_map("Finding")?;
        Ok(Finding {
            id: Deserialize::from_value(map_get(m, "id")?)?,
            cca: Deserialize::from_value(map_get(m, "cca")?)?,
            mode: Deserialize::from_value(map_get(m, "mode")?)?,
            genome: Deserialize::from_value(map_get(m, "genome")?)?,
            sim: Deserialize::from_value(map_get(m, "sim")?)?,
            scoring: Deserialize::from_value(map_get(m, "scoring")?)?,
            link_rate_bps: Deserialize::from_value(map_get(m, "link_rate_bps")?)?,
            outcome: Deserialize::from_value(map_get(m, "outcome")?)?,
            signature: Deserialize::from_value(map_get(m, "signature")?)?,
            behavior_digest: Deserialize::from_value(map_get(m, "behavior_digest")?)?,
            provenance: Deserialize::from_value(map_get(m, "provenance")?)?,
            fairness: match map_get(m, "fairness") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => None,
            },
        })
    }
}

/// Formats a finding id from its parts.
pub fn finding_id(cca: CcaKind, mode: FuzzMode, signature: &BehaviorSignature) -> String {
    format!("{}-{}-{:010x}", cca.name(), mode.name(), signature.key())
}

impl Finding {
    /// Wraps a campaign's best genome into a persistent finding.
    pub fn from_campaign(
        campaign: &Campaign,
        genome: GenomePayload,
        outcome: EvalOutcome,
        total_evaluations: u64,
    ) -> Finding {
        let signature = BehaviorSignature::from_outcome(&outcome, campaign.link_rate_bps as f64);
        let mut finding = Finding {
            id: finding_id(campaign.cca, campaign.mode, &signature),
            cca: campaign.cca,
            mode: campaign.mode,
            sim: campaign.sim.clone(),
            scoring: campaign.scoring,
            link_rate_bps: campaign.link_rate_bps,
            outcome,
            signature,
            behavior_digest: 0,
            provenance: Provenance {
                seed: campaign.ga.seed,
                generations: campaign.ga.generations,
                total_evaluations,
                minimized: false,
                original_score: outcome.score,
                original_packets: genome.packet_count() as u64,
            },
            genome,
            fairness: None,
        };
        // One simulation provides both the digest and (for scenarios) the
        // per-flow fairness summary.
        let (_, digest, fairness) = finding.replay_full(None);
        finding.behavior_digest = digest;
        finding.fairness = fairness;
        finding
    }

    /// Re-simulates a scenario finding and derives its per-flow fairness
    /// summary (`None` for single-flow findings).
    pub fn compute_fairness_summary(&self) -> Option<FairnessSummary> {
        self.replay_full(None).2
    }

    /// The simulator-backed evaluator that reproduces this finding's scores.
    pub fn evaluator(&self) -> SimEvaluator {
        SimEvaluator::new(self.sim.clone(), self.cca, self.scoring, self.link_rate_bps)
    }

    /// Re-runs the stored genome through one fresh deterministic simulation,
    /// optionally against a different CCA, returning both the scored outcome
    /// and the run's behaviour digest. One simulation serves both purposes —
    /// this is the hot path of `ccfuzz replay`. For scenario findings the
    /// CCA override replaces the *primary* flow's algorithm; the competing
    /// flows keep theirs.
    pub fn replay_run(&self, cca: Option<CcaKind>) -> (EvalOutcome, u64) {
        let (outcome, digest, _) = self.replay_full(cca);
        (outcome, digest)
    }

    /// Like [`Finding::replay_run`], but the single simulation additionally
    /// yields the per-flow fairness summary for scenario findings (`None`
    /// for single-flow genomes). Simulations dominate the cost of creating,
    /// minimizing and replaying findings, so everything that needs both the
    /// digest and the fairness breakdown goes through here.
    pub fn replay_full(&self, cca: Option<CcaKind>) -> (EvalOutcome, u64, Option<FairnessSummary>) {
        let mut evaluator = self.evaluator();
        if let Some(cca) = cca {
            evaluator.cca = cca;
        }
        match &self.genome {
            GenomePayload::Link(g) => {
                let result = evaluator.simulate_link(g, false);
                let outcome =
                    EvalOutcome::from_result(&evaluator.scoring, &result, evaluator.base.mss, None);
                (outcome, result.stats.digest(), None)
            }
            GenomePayload::Traffic(g) => {
                let result = evaluator.simulate_traffic(g, false);
                let inputs = TraceScoreInputs {
                    traffic_packets: g.packet_count(),
                    traffic_max_packets: g.max_packets,
                    traffic_dropped: result.stats.cross_dropped,
                };
                let outcome = EvalOutcome::from_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    Some(inputs),
                );
                (outcome, result.stats.digest(), None)
            }
            GenomePayload::Scenario(g) => {
                let mut g = g.clone();
                if let Some(cca) = cca {
                    g.flows[0].cca = cca;
                }
                let result = evaluator.simulate_scenario(&g, false);
                let outcome = EvalOutcome::from_scenario_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    &g,
                );
                let breakdown = fairness_breakdown(&result, evaluator.base.mss);
                let fairness = FairnessSummary {
                    per_flow_cca: g.flows.iter().map(|f| f.cca.name().to_string()).collect(),
                    per_flow_goodput_bps: breakdown.per_flow_goodput_bps,
                    per_flow_delivered: breakdown.per_flow_delivered,
                    jain_index: breakdown.jain_index,
                    max_starvation_secs: breakdown.max_starvation_secs,
                };
                (outcome, result.stats.digest(), Some(fairness))
            }
            GenomePayload::Topology(g) => {
                let mut g = g.clone();
                if let Some(cca) = cca {
                    g.flows[0].flow.cca = cca;
                }
                let result = evaluator.simulate_topology(&g, false);
                // The same capacity-capped scoring the hunt used, so replay
                // reproduces the stored score exactly.
                let outcome = EvalOutcome::from_topology_result(
                    &evaluator.topology_scoring(&g),
                    &result,
                    evaluator.base.mss,
                    &g,
                );
                // Topology findings reuse the per-flow summary so reports
                // can show the parking-lot split without re-simulating.
                let breakdown = fairness_breakdown(&result, evaluator.base.mss);
                let fairness = FairnessSummary {
                    per_flow_cca: g
                        .flows
                        .iter()
                        .map(|f| f.flow.cca.name().to_string())
                        .collect(),
                    per_flow_goodput_bps: breakdown.per_flow_goodput_bps,
                    per_flow_delivered: breakdown.per_flow_delivered,
                    jain_index: breakdown.jain_index,
                    max_starvation_secs: breakdown.max_starvation_secs,
                };
                (outcome, result.stats.digest(), Some(fairness))
            }
            GenomePayload::Workload(g) => {
                let mut g = g.clone();
                if let Some(cca) = cca {
                    // The override replaces the incumbent elephant's
                    // algorithm; the arrival pool keeps its mix.
                    g.elephants[0].cca = cca;
                }
                let result = evaluator.simulate_workload(&g, false);
                let outcome = EvalOutcome::from_workload_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    &g,
                );
                // Only the static elephants surface per-flow stats (arriving
                // flows aggregate into the workload block), so the summary
                // covers exactly the elephant mix.
                let breakdown = fairness_breakdown(&result, evaluator.base.mss);
                let fairness = FairnessSummary {
                    per_flow_cca: g
                        .elephants
                        .iter()
                        .map(|f| f.cca.name().to_string())
                        .collect(),
                    per_flow_goodput_bps: breakdown.per_flow_goodput_bps,
                    per_flow_delivered: breakdown.per_flow_delivered,
                    jain_index: breakdown.jain_index,
                    max_starvation_secs: breakdown.max_starvation_secs,
                };
                (outcome, result.stats.digest(), Some(fairness))
            }
        }
    }

    /// Like [`Finding::replay_run`], but with the structured trace recorder
    /// installed: returns the scored outcome, the behaviour digest and the
    /// captured [`SimTrace`]. The recorder is a passive observer, so the
    /// digest still matches the stored one — `ccfuzz trace` checks this and
    /// the corpus determinism tests pin it for every committed fixture.
    pub fn replay_traced(&self) -> (EvalOutcome, u64, SimTrace) {
        let evaluator = self.evaluator();
        match &self.genome {
            GenomePayload::Link(g) => {
                let (result, trace) = evaluator.simulate_link_traced(g);
                let outcome =
                    EvalOutcome::from_result(&evaluator.scoring, &result, evaluator.base.mss, None);
                (outcome, result.stats.digest(), trace)
            }
            GenomePayload::Traffic(g) => {
                let (result, trace) = evaluator.simulate_traffic_traced(g);
                let inputs = TraceScoreInputs {
                    traffic_packets: g.packet_count(),
                    traffic_max_packets: g.max_packets,
                    traffic_dropped: result.stats.cross_dropped,
                };
                let outcome = EvalOutcome::from_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    Some(inputs),
                );
                (outcome, result.stats.digest(), trace)
            }
            GenomePayload::Scenario(g) => {
                let (result, trace) = evaluator.simulate_scenario_traced(g);
                let outcome = EvalOutcome::from_scenario_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    g,
                );
                (outcome, result.stats.digest(), trace)
            }
            GenomePayload::Topology(g) => {
                let (result, trace) = evaluator.simulate_topology_traced(g);
                let outcome = EvalOutcome::from_topology_result(
                    &evaluator.topology_scoring(g),
                    &result,
                    evaluator.base.mss,
                    g,
                );
                (outcome, result.stats.digest(), trace)
            }
            GenomePayload::Workload(g) => {
                let (result, trace) = evaluator.simulate_workload_traced(g);
                let outcome = EvalOutcome::from_workload_result(
                    &evaluator.scoring,
                    &result,
                    evaluator.base.mss,
                    g,
                );
                (outcome, result.stats.digest(), trace)
            }
        }
    }

    /// Re-evaluates the stored genome from scratch (a fresh deterministic
    /// simulation), optionally against a different CCA.
    pub fn evaluate_against(&self, cca: Option<CcaKind>) -> EvalOutcome {
        self.replay_run(cca).0
    }

    /// Re-simulates the stored genome and digests the run (see
    /// `RunStats::digest`): a determinism fingerprint that is stronger than
    /// score equality.
    pub fn compute_behavior_digest(&self) -> u64 {
        self.replay_run(None).1
    }

    /// Checks internal consistency (genome invariants, id/signature match,
    /// mode/genome agreement).
    pub fn validate(&self) -> Result<(), String> {
        self.genome.validate()?;
        if !self.genome.matches_mode(self.mode) {
            return Err(format!(
                "finding {} mode {:?} does not match its genome",
                self.id, self.mode
            ));
        }
        let expected = finding_id(self.cca, self.mode, &self.signature);
        if self.id != expected {
            return Err(format!(
                "finding id `{}` does not match signature (`{expected}`)",
                self.id
            ));
        }
        self.sim.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_core::fuzzer::GaParams;
    use ccfuzz_netsim::time::SimDuration;

    fn tiny_campaign(mode: FuzzMode) -> Campaign {
        let mut ga = GaParams::quick();
        ga.islands = 2;
        ga.population_per_island = 3;
        ga.generations = 2;
        Campaign::paper_standard(mode, CcaKind::Reno, SimDuration::from_secs(2), ga)
    }

    #[test]
    fn finding_from_traffic_campaign_is_valid_and_replayable() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        finding.validate().unwrap();
        assert!(finding.id.starts_with("reno-traffic-"));
        assert!(!finding.provenance.minimized);
        // Replay reproduces the recorded outcome exactly (determinism).
        let replayed = finding.evaluate_against(None);
        assert_eq!(replayed, finding.outcome);
        assert_eq!(finding.behavior_digest, finding.compute_behavior_digest());
    }

    #[test]
    fn validate_catches_mode_mismatch_and_bad_id() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        let mut bad = finding.clone();
        bad.mode = FuzzMode::Link;
        assert!(bad.validate().is_err());
        let mut bad = finding.clone();
        bad.id = "nonsense".into();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn evaluate_against_other_cca_differs_in_general() {
        let campaign = tiny_campaign(FuzzMode::Traffic);
        let result = campaign.run_traffic();
        let finding = Finding::from_campaign(
            &campaign,
            GenomePayload::Traffic(result.best_genome.clone()),
            result.best_outcome,
            result.total_evaluations as u64,
        );
        let as_cubic = finding.evaluate_against(Some(CcaKind::Cubic));
        // Not asserting inequality of scores (they may coincide), but the
        // call must succeed and produce a finite score.
        assert!(as_cubic.score.is_finite());
    }
}
