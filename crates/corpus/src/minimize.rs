//! Trace minimization: shrink a winning trace to an interpretable core.
//!
//! The GA's best traces carry a lot of incidental structure — packets that
//! contribute nothing, bursts with irrelevant micro-timing, outages far
//! longer than needed. Minimization makes findings *explainable* (the paper's
//! Figure 4 traces are readable precisely because they are simple) and
//! cheaper to replay. Two stages, both driven by re-simulation:
//!
//! 1. **Delta debugging** over genome segments (traffic mode): repeatedly try
//!    deleting index ranges, keeping a deletion whenever the re-simulated
//!    score retains at least `retain_fraction` of the original. Granularity
//!    halves each round, AFL-tmin style.
//! 2. **Value-level shrinking**: flatten bursts to even spacing, compress
//!    over-long outages, and (link mode, where packet count is an invariant)
//!    quantize timestamps to the coarsest grid that keeps the score.
//!
//! Invariants, verified by property tests: the minimized trace never has
//! *more* packets than the input, and its score never drops below
//! `retain_fraction * original_score`.

use crate::finding::{Finding, GenomePayload};
use crate::signature::BehaviorSignature;
use ccfuzz_core::evaluate::{Evaluator, SimEvaluator};
use ccfuzz_core::genome::{Genome, LinkGenome, TrafficGenome};
use ccfuzz_core::scenario::{QdiscGene, ScenarioGenome};
use ccfuzz_core::topology::TopologyGenome;
use ccfuzz_core::workload::WorkloadGenome;
use ccfuzz_netsim::queue::{Qdisc, QueueCapacity};
use ccfuzz_netsim::time::SimDuration;
use ccfuzz_netsim::workload::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// Minimization policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinimizeConfig {
    /// Fraction of the original score the minimized trace must retain
    /// (0.8 by default — the acceptance bar from the issue).
    pub retain_fraction: f64,
    /// Simulation budget: minimization stops when it has spent this many
    /// evaluations.
    pub max_evaluations: usize,
    /// Delta debugging stops splitting below segments of this many packets.
    pub min_segment: usize,
    /// Gaps below this are considered part of one burst when flattening.
    pub burst_gap: SimDuration,
    /// Outages longer than this are compressed down to this.
    pub outage_cap: SimDuration,
    /// Quantization grids tried for link genomes, coarsest first.
    pub link_grids: [SimDuration; 4],
}

impl Default for MinimizeConfig {
    fn default() -> Self {
        MinimizeConfig {
            retain_fraction: 0.8,
            max_evaluations: 300,
            min_segment: 1,
            burst_gap: SimDuration::from_millis(2),
            outage_cap: SimDuration::from_millis(500),
            link_grids: [
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
                SimDuration::from_millis(20),
                SimDuration::from_millis(10),
            ],
        }
    }
}

/// What minimization achieved.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MinimizeReport {
    /// Packets before.
    pub original_packets: u64,
    /// Packets after.
    pub minimized_packets: u64,
    /// Score before (re-measured at the start of minimization).
    pub original_score: f64,
    /// Score after.
    pub minimized_score: f64,
    /// The floor the minimized score had to clear.
    pub threshold: f64,
    /// Simulations spent.
    pub evaluations: u64,
    /// Human-readable notes about which passes did what.
    pub passes: Vec<String>,
}

struct Budget {
    spent: usize,
    max: usize,
}

impl Budget {
    fn exhausted(&self) -> bool {
        self.spent >= self.max
    }
}

/// Minimizes a traffic genome against an evaluator.
pub fn minimize_traffic<E: Evaluator<TrafficGenome>>(
    evaluator: &E,
    genome: &TrafficGenome,
    cfg: &MinimizeConfig,
) -> (TrafficGenome, MinimizeReport) {
    let mut budget = Budget {
        spent: 0,
        max: cfg.max_evaluations.max(1),
    };
    let original_score = {
        budget.spent += 1;
        evaluator.evaluate(genome).score
    };
    let threshold = original_score * cfg.retain_fraction;
    let mut current = genome.clone();
    let mut current_score = original_score;
    let mut passes = Vec::new();

    // Stage 1: delta debugging over index segments.
    let removed = ddmin_pass(
        evaluator,
        &mut current,
        &mut current_score,
        threshold,
        cfg,
        &mut budget,
    );
    passes.push(format!(
        "ddmin: removed {removed} of {} packets ({} evals)",
        genome.packet_count(),
        budget.spent
    ));

    // Stage 2: value-level shrinking. Order matters: flattening first makes
    // outage compression see clean gaps.
    for (name, candidate) in [
        ("flatten-bursts", current.flattened_bursts(cfg.burst_gap)),
        ("shorten-outages", current.shortened_outages(cfg.outage_cap)),
    ] {
        if budget.exhausted() {
            break;
        }
        if candidate.timestamps == current.timestamps {
            continue;
        }
        budget.spent += 1;
        let score = evaluator.evaluate(&candidate).score;
        if score >= threshold {
            passes.push(format!("{name}: accepted (score {score:.6})"));
            current = candidate;
            current_score = score;
        } else {
            passes.push(format!(
                "{name}: rejected (score {score:.6} < {threshold:.6})"
            ));
        }
    }

    debug_assert!(current.packet_count() <= genome.packet_count());
    let report = MinimizeReport {
        original_packets: genome.packet_count() as u64,
        minimized_packets: current.packet_count() as u64,
        original_score,
        minimized_score: current_score,
        threshold,
        evaluations: budget.spent as u64,
        passes,
    };
    (current, report)
}

/// Greedy delta-debugging: try deleting each of `n` segments; on success
/// restart at the same granularity, otherwise halve segment size.
fn ddmin_pass<E: Evaluator<TrafficGenome>>(
    evaluator: &E,
    current: &mut TrafficGenome,
    current_score: &mut f64,
    threshold: f64,
    cfg: &MinimizeConfig,
    budget: &mut Budget,
) -> usize {
    let start_count = current.packet_count();
    let mut num_segments = 2usize;
    loop {
        let n = current.packet_count();
        if n == 0 || budget.exhausted() {
            break;
        }
        let seg_len = n.div_ceil(num_segments);
        if seg_len < cfg.min_segment.max(1) {
            break;
        }
        let mut any_removed = false;
        let mut seg = 0usize;
        while seg * seg_len < current.packet_count() && !budget.exhausted() {
            let lo = seg * seg_len;
            let hi = (lo + seg_len).min(current.packet_count());
            let candidate = current.without_index_range(lo..hi);
            budget.spent += 1;
            let score = evaluator.evaluate(&candidate).score;
            if score >= threshold {
                *current = candidate;
                *current_score = score;
                any_removed = true;
                // Do not advance `seg`: the segment that slid into this
                // position is tried next.
            } else {
                seg += 1;
            }
        }
        if !any_removed {
            if seg_len == 1 {
                break;
            }
            num_segments = num_segments.saturating_mul(2);
        }
    }
    start_count - current.packet_count()
}

/// Minimizes a link genome. Packet count is a link-genome invariant (it
/// defines the average bandwidth), so shrinking is purely value-level:
/// the coarsest acceptable quantization grid, then outage compression.
pub fn minimize_link<E: Evaluator<LinkGenome>>(
    evaluator: &E,
    genome: &LinkGenome,
    cfg: &MinimizeConfig,
) -> (LinkGenome, MinimizeReport) {
    let mut budget = Budget {
        spent: 0,
        max: cfg.max_evaluations.max(1),
    };
    let original_score = {
        budget.spent += 1;
        evaluator.evaluate(genome).score
    };
    let threshold = original_score * cfg.retain_fraction;
    let mut current = genome.clone();
    let mut current_score = original_score;
    let mut passes = Vec::new();

    for grid in cfg.link_grids {
        if budget.exhausted() {
            break;
        }
        let candidate = current.quantized(grid);
        if candidate.timestamps == current.timestamps {
            continue;
        }
        budget.spent += 1;
        let score = evaluator.evaluate(&candidate).score;
        if score >= threshold {
            passes.push(format!(
                "quantize-{}ms: accepted (score {score:.6})",
                grid.as_millis()
            ));
            current = candidate;
            current_score = score;
            break; // coarsest acceptable grid wins
        }
        passes.push(format!(
            "quantize-{}ms: rejected (score {score:.6} < {threshold:.6})",
            grid.as_millis()
        ));
    }

    if !budget.exhausted() {
        let candidate = current.shortened_outages(cfg.outage_cap);
        if candidate.timestamps != current.timestamps {
            budget.spent += 1;
            let score = evaluator.evaluate(&candidate).score;
            if score >= threshold {
                passes.push(format!("shorten-outages: accepted (score {score:.6})"));
                current = candidate;
                current_score = score;
            } else {
                passes.push(format!(
                    "shorten-outages: rejected (score {score:.6} < {threshold:.6})"
                ));
            }
        }
    }

    debug_assert_eq!(current.packet_count(), genome.packet_count());
    let report = MinimizeReport {
        original_packets: genome.packet_count() as u64,
        minimized_packets: current.packet_count() as u64,
        original_score,
        minimized_score: current_score,
        threshold,
        evaluations: budget.spent as u64,
        passes,
    };
    (current, report)
}

/// Adapts a [`SimEvaluator`] so the traffic-minimization passes can shrink a
/// scenario's cross-traffic sub-genome: every candidate traffic genome is
/// re-embedded into the (otherwise fixed) scenario before evaluation.
struct ScenarioTrafficEvaluator<'a> {
    evaluator: &'a SimEvaluator,
    scenario: &'a ScenarioGenome,
}

impl Evaluator<TrafficGenome> for ScenarioTrafficEvaluator<'_> {
    fn evaluate(&self, genome: &TrafficGenome) -> ccfuzz_core::evaluate::EvalOutcome {
        let mut scenario = self.scenario.clone();
        scenario.traffic = Some(genome.clone());
        Evaluator::<ScenarioGenome>::evaluate(self.evaluator, &scenario)
    }
}

/// A strictly milder (closer-to-drop-tail) version of a qdisc gene: RED
/// thresholds move halfway toward the queue capacity and the mark
/// probability halves; CoDel's target and interval double. Returns `None`
/// when the gene cannot get meaningfully milder.
fn milder_qdisc(gene: &QdiscGene, capacity_packets: usize) -> Option<QdiscGene> {
    let mut out = *gene;
    match &mut out.discipline {
        Qdisc::DropTail => return None,
        Qdisc::Red {
            min_thresh,
            max_thresh,
            mark_probability,
        } => {
            let new_min = *min_thresh + (capacity_packets.saturating_sub(*min_thresh)) / 2;
            let new_max =
                (*max_thresh + (capacity_packets.saturating_sub(*max_thresh)) / 2).max(new_min + 1);
            let new_p = (*mark_probability / 2.0).max(0.01);
            if new_min == *min_thresh && new_max == *max_thresh && new_p >= *mark_probability {
                return None;
            }
            *min_thresh = new_min;
            *max_thresh = new_max;
            *mark_probability = new_p;
        }
        Qdisc::CoDel { target, interval } => {
            let cap = SimDuration::from_millis(1_000);
            if *target >= cap && *interval >= cap {
                return None;
            }
            *target = (*target + *target).min(cap);
            *interval = (*interval + *interval).min(cap);
        }
    }
    Some(out)
}

/// Shrinks a scenario's qdisc gene toward drop-tail: first the maximal step
/// (no qdisc gene at all — plain drop-tail, no ECN), then successively
/// milder parameter settings, keeping each step only when the re-simulated
/// score retains the threshold.
fn qdisc_shrink_pass(
    evaluator: &SimEvaluator,
    current: &mut ScenarioGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    if current.qdisc.is_none() || budget.exhausted() {
        return;
    }
    let capacity_packets = match evaluator.base.queue_capacity {
        QueueCapacity::Packets(n) => n,
        QueueCapacity::Bytes(b) => (b / evaluator.base.mss.max(1) as u64).max(1) as usize,
    };

    // Maximal shrink: the behaviour survives on a plain drop-tail gateway.
    let mut candidate = current.clone();
    candidate.qdisc = None;
    budget.spent += 1;
    let score = Evaluator::<ScenarioGenome>::evaluate(evaluator, &candidate).score;
    if score >= threshold {
        passes.push(format!("qdisc->droptail: accepted (score {score:.6})"));
        *current = candidate;
        *current_score = score;
        return;
    }
    passes.push(format!(
        "qdisc->droptail: rejected (score {score:.6} < {threshold:.6})"
    ));

    // Stepwise milding of the discipline parameters.
    while !budget.exhausted() {
        let Some(gene) = &current.qdisc else { break };
        let Some(milder) = milder_qdisc(gene, capacity_packets) else {
            break;
        };
        let mut candidate = current.clone();
        candidate.qdisc = Some(milder);
        budget.spent += 1;
        let score = Evaluator::<ScenarioGenome>::evaluate(evaluator, &candidate).score;
        let label = milder.discipline.label();
        if score >= threshold {
            passes.push(format!("qdisc-milder {label}: accepted (score {score:.6})"));
            *current = candidate;
            *current_score = score;
        } else {
            passes.push(format!(
                "qdisc-milder {label}: rejected (score {score:.6} < {threshold:.6})"
            ));
            break;
        }
    }
}

/// Minimizes a scenario genome. Flow genes are the scenario's substance and
/// stay; what shrinks is the cross-traffic helper (when present), using the
/// full traffic ddmin + value-shrinking pipeline against the multi-flow
/// simulation, and then the qdisc gene (when present), stepped toward
/// drop-tail as far as the score allows.
pub fn minimize_scenario(
    evaluator: &SimEvaluator,
    genome: &ScenarioGenome,
    cfg: &MinimizeConfig,
) -> (ScenarioGenome, MinimizeReport) {
    let (mut minimized, mut report) = match &genome.traffic {
        Some(traffic) => {
            let wrapper = ScenarioTrafficEvaluator {
                evaluator,
                scenario: genome,
            };
            let (minimized_traffic, report) = minimize_traffic(&wrapper, traffic, cfg);
            let mut minimized = genome.clone();
            minimized.traffic = Some(minimized_traffic);
            (minimized, report)
        }
        None => {
            // Nothing trafficky to shrink: one evaluation to anchor the
            // score and the retention threshold.
            let score = Evaluator::<ScenarioGenome>::evaluate(evaluator, genome).score;
            (
                genome.clone(),
                MinimizeReport {
                    original_packets: 0,
                    minimized_packets: 0,
                    original_score: score,
                    minimized_score: score,
                    threshold: score * cfg.retain_fraction,
                    evaluations: 1,
                    passes: vec!["scenario has no cross traffic; nothing to shrink".into()],
                },
            )
        }
    };
    let mut budget = Budget {
        spent: report.evaluations as usize,
        max: cfg.max_evaluations.max(1),
    };
    let mut score = report.minimized_score;
    qdisc_shrink_pass(
        evaluator,
        &mut minimized,
        &mut score,
        report.threshold,
        &mut budget,
        &mut report.passes,
    );
    report.minimized_score = score;
    report.evaluations = budget.spent as u64;
    (minimized, report)
}

/// Adapts a [`SimEvaluator`] so the traffic-minimization passes can shrink
/// a topology's cross-traffic sub-genome: every candidate traffic genome is
/// re-embedded into the (otherwise fixed) topology before evaluation.
struct TopologyTrafficEvaluator<'a> {
    evaluator: &'a SimEvaluator,
    topology: &'a TopologyGenome,
}

impl Evaluator<TrafficGenome> for TopologyTrafficEvaluator<'_> {
    fn evaluate(&self, genome: &TrafficGenome) -> ccfuzz_core::evaluate::EvalOutcome {
        let mut topology = self.topology.clone();
        topology.traffic = Some(genome.clone());
        Evaluator::<TopologyGenome>::evaluate(self.evaluator, &topology)
    }
}

/// Tries to drop hops one index at a time (re-scanning from the front after
/// every success), keeping a deletion whenever the re-simulated score
/// retains the threshold: the minimized chain is the shortest prefix of
/// bottlenecks the behaviour actually needs, ideally the single-hop
/// dumbbell.
fn hop_drop_pass(
    evaluator: &SimEvaluator,
    current: &mut TopologyGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    let start_hops = current.hop_count();
    let mut at = 0usize;
    while current.hop_count() > 1 && at < current.hop_count() && !budget.exhausted() {
        let Some(candidate) = current.without_hop(at) else {
            break;
        };
        budget.spent += 1;
        let score = Evaluator::<TopologyGenome>::evaluate(evaluator, &candidate).score;
        if score >= threshold {
            *current = candidate;
            *current_score = score;
            // Restart the scan: removing this hop changes the dynamics, so
            // a hop whose removal was rejected earlier may drop cleanly now.
            at = 0;
        } else {
            at += 1;
        }
    }
    passes.push(format!(
        "drop-hops: {} -> {} hops",
        start_hops,
        current.hop_count()
    ));
}

/// One step of relaxing hop `at` toward the paper's single-bottleneck
/// baseline: drop its qdisc, then widen its buffer to the paper's 100
/// packets, then raise its rate to the campaign's reference rate, then
/// settle its delay on the paper's 20 ms. Returns `None` once the hop is
/// fully baseline.
fn relaxed_hop(
    genome: &TopologyGenome,
    at: usize,
    baseline_rate_bps: u64,
) -> Option<(TopologyGenome, &'static str)> {
    let hop = &genome.hops[at];
    let mut child = genome.clone();
    if hop.qdisc.is_some() {
        child.hops[at].qdisc = None;
        return Some((child, "qdisc->droptail"));
    }
    if hop.buffer_packets < 100 {
        child.hops[at].buffer_packets = 100;
        return Some((child, "buffer->100"));
    }
    if hop.rate_bps < baseline_rate_bps {
        child.hops[at].rate_bps = baseline_rate_bps;
        return Some((child, "rate->baseline"));
    }
    if hop.delay != SimDuration::from_millis(20) {
        child.hops[at].delay = SimDuration::from_millis(20);
        return Some((child, "delay->20ms"));
    }
    None
}

/// Relaxes every surviving hop's parameters toward the single-hop baseline
/// (drop-tail, 100-packet buffer, the campaign's link rate, 20 ms delay),
/// keeping each step only while the score holds: whatever stays tightened
/// in the minimized finding is what the behaviour genuinely depends on.
fn hop_relax_pass(
    evaluator: &SimEvaluator,
    current: &mut TopologyGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    let baseline_rate = evaluator.link_rate_bps;
    for at in 0..current.hop_count() {
        while !budget.exhausted() {
            let Some((candidate, step)) = relaxed_hop(current, at, baseline_rate) else {
                break;
            };
            budget.spent += 1;
            let score = Evaluator::<TopologyGenome>::evaluate(evaluator, &candidate).score;
            if score >= threshold {
                passes.push(format!(
                    "relax hop {at} {step}: accepted (score {score:.6})"
                ));
                *current = candidate;
                *current_score = score;
            } else {
                passes.push(format!(
                    "relax hop {at} {step}: rejected (score {score:.6} < {threshold:.6})"
                ));
                break;
            }
        }
    }
}

/// Minimizes a topology genome. The hop chain is the finding's substance,
/// so minimization pulls it toward the single-hop paper baseline from two
/// directions — dropping whole hops, then relaxing the survivors' rate /
/// buffer / delay / qdisc — and shrinks the cross-traffic helper with the
/// full traffic ddmin + value-shrinking pipeline against the multi-hop
/// simulation.
pub fn minimize_topology(
    evaluator: &SimEvaluator,
    genome: &TopologyGenome,
    cfg: &MinimizeConfig,
) -> (TopologyGenome, MinimizeReport) {
    let (mut minimized, mut report) = match &genome.traffic {
        Some(traffic) => {
            let wrapper = TopologyTrafficEvaluator {
                evaluator,
                topology: genome,
            };
            let (minimized_traffic, report) = minimize_traffic(&wrapper, traffic, cfg);
            let mut minimized = genome.clone();
            minimized.traffic = Some(minimized_traffic);
            (minimized, report)
        }
        None => {
            let score = Evaluator::<TopologyGenome>::evaluate(evaluator, genome).score;
            (
                genome.clone(),
                MinimizeReport {
                    original_packets: 0,
                    minimized_packets: 0,
                    original_score: score,
                    minimized_score: score,
                    threshold: score * cfg.retain_fraction,
                    evaluations: 1,
                    passes: vec!["topology has no cross traffic; nothing to shrink".into()],
                },
            )
        }
    };
    let mut budget = Budget {
        spent: report.evaluations as usize,
        max: cfg.max_evaluations.max(1),
    };
    let mut score = report.minimized_score;
    hop_drop_pass(
        evaluator,
        &mut minimized,
        &mut score,
        report.threshold,
        &mut budget,
        &mut report.passes,
    );
    hop_relax_pass(
        evaluator,
        &mut minimized,
        &mut score,
        report.threshold,
        &mut budget,
        &mut report.passes,
    );
    debug_assert!(minimized.hop_count() <= genome.hop_count());
    report.minimized_score = score;
    report.evaluations = budget.spent as u64;
    (minimized, report)
}

/// Halves a workload's arrival rate, flooring at 1 flow/s. Returns `None`
/// once the rate cannot meaningfully drop further.
fn thinned_arrivals(genome: &WorkloadGenome) -> Option<WorkloadGenome> {
    let rate = genome.arrivals.process.rate_per_sec();
    let new_rate = rate / 2.0;
    if new_rate < 1.0 {
        return None;
    }
    let mut child = genome.clone();
    match &mut child.arrivals.process {
        ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec = new_rate,
        ArrivalProcess::OnOff { rate_per_sec, .. } => *rate_per_sec = new_rate,
    }
    Some(child)
}

/// Keeps halving the arrival rate while the score holds: the minimized
/// workload arrives only as fast as the behaviour actually needs.
fn arrival_thin_pass(
    evaluator: &SimEvaluator,
    current: &mut WorkloadGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    while !budget.exhausted() {
        let Some(candidate) = thinned_arrivals(current) else {
            break;
        };
        budget.spent += 1;
        let score = Evaluator::<WorkloadGenome>::evaluate(evaluator, &candidate).score;
        let rate = candidate.arrivals.process.rate_per_sec();
        if score >= threshold {
            passes.push(format!(
                "thin-arrivals {rate:.1}/s: accepted (score {score:.6})"
            ));
            *current = candidate;
            *current_score = score;
        } else {
            passes.push(format!(
                "thin-arrivals {rate:.1}/s: rejected (score {score:.6} < {threshold:.6})"
            ));
            break;
        }
    }
}

/// Collapses the flow-size distribution from the top: repeatedly halve the
/// largest size class toward the smallest, keeping each step only while the
/// score holds. A tail-latency finding that survives with mice-only sizes is
/// far easier to reason about than one hiding behind a heavy tail.
fn size_collapse_pass(
    evaluator: &SimEvaluator,
    current: &mut WorkloadGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    while !budget.exhausted() {
        let size = current.arrivals.size;
        let new_max = (size.max_packets / 2).max(size.min_packets);
        if new_max == size.max_packets {
            break;
        }
        let mut candidate = current.clone();
        candidate.arrivals.size.max_packets = new_max;
        budget.spent += 1;
        let score = Evaluator::<WorkloadGenome>::evaluate(evaluator, &candidate).score;
        if score >= threshold {
            passes.push(format!(
                "collapse-sizes max={new_max}pkt: accepted (score {score:.6})"
            ));
            *current = candidate;
            *current_score = score;
        } else {
            passes.push(format!(
                "collapse-sizes max={new_max}pkt: rejected (score {score:.6} < {threshold:.6})"
            ));
            break;
        }
    }
}

/// Tries to drop background elephants one index at a time (never the
/// incumbent at index 0, re-scanning after every success), keeping each
/// removal while the score holds: the minimized elephant mix is the smallest
/// background the tail inflation actually needs.
fn elephant_drop_pass(
    evaluator: &SimEvaluator,
    current: &mut WorkloadGenome,
    current_score: &mut f64,
    threshold: f64,
    budget: &mut Budget,
    passes: &mut Vec<String>,
) {
    let start_elephants = current.elephant_count();
    let mut at = 1usize;
    while current.elephant_count() > 1 && at < current.elephant_count() && !budget.exhausted() {
        let mut candidate = current.clone();
        candidate.elephants.remove(at);
        budget.spent += 1;
        let score = Evaluator::<WorkloadGenome>::evaluate(evaluator, &candidate).score;
        if score >= threshold {
            *current = candidate;
            *current_score = score;
            // Restart behind the incumbent: removing one elephant changes
            // the contention, so earlier rejections may drop cleanly now.
            at = 1;
        } else {
            at += 1;
        }
    }
    passes.push(format!(
        "drop-elephants: {} -> {} elephants",
        start_elephants,
        current.elephant_count()
    ));
}

/// Minimizes a workload genome. The arrival genes are the finding's
/// substance, so minimization pulls them toward the quietest workload that
/// still shows the behaviour: halve the arrival rate (fewer churning flows),
/// collapse the size classes from the top (lighter tail), and drop
/// background elephants, each step kept only while the re-simulated score
/// retains the threshold.
pub fn minimize_workload(
    evaluator: &SimEvaluator,
    genome: &WorkloadGenome,
    cfg: &MinimizeConfig,
) -> (WorkloadGenome, MinimizeReport) {
    let mut budget = Budget {
        spent: 0,
        max: cfg.max_evaluations.max(1),
    };
    let original_score = {
        budget.spent += 1;
        Evaluator::<WorkloadGenome>::evaluate(evaluator, genome).score
    };
    let threshold = original_score * cfg.retain_fraction;
    let mut current = genome.clone();
    let mut current_score = original_score;
    let mut passes = Vec::new();

    // Order matters: thinning arrivals first leaves fewer flows for the
    // size and elephant passes to re-simulate, so the budget goes further.
    arrival_thin_pass(
        evaluator,
        &mut current,
        &mut current_score,
        threshold,
        &mut budget,
        &mut passes,
    );
    size_collapse_pass(
        evaluator,
        &mut current,
        &mut current_score,
        threshold,
        &mut budget,
        &mut passes,
    );
    elephant_drop_pass(
        evaluator,
        &mut current,
        &mut current_score,
        threshold,
        &mut budget,
        &mut passes,
    );

    debug_assert!(current.elephant_count() <= genome.elephant_count());
    let report = MinimizeReport {
        original_packets: genome.packet_count() as u64,
        minimized_packets: current.packet_count() as u64,
        original_score,
        minimized_score: current_score,
        threshold,
        evaluations: budget.spent as u64,
        passes,
    };
    (current, report)
}

/// Minimizes a stored finding: shrinks its genome with the finding's own
/// evaluator, then refreshes the outcome, signature, digest and provenance.
pub fn minimize_finding(finding: &Finding, cfg: &MinimizeConfig) -> (Finding, MinimizeReport) {
    let evaluator = finding.evaluator();
    let mut out = finding.clone();
    let report = match &finding.genome {
        GenomePayload::Traffic(genome) => {
            let (minimized, report) = minimize_traffic(&evaluator, genome, cfg);
            out.genome = GenomePayload::Traffic(minimized);
            report
        }
        GenomePayload::Link(genome) => {
            let (minimized, report) = minimize_link(&evaluator, genome, cfg);
            out.genome = GenomePayload::Link(minimized);
            report
        }
        GenomePayload::Scenario(genome) => {
            let (minimized, report) = minimize_scenario(&evaluator, genome, cfg);
            out.genome = GenomePayload::Scenario(minimized);
            report
        }
        GenomePayload::Topology(genome) => {
            let (minimized, report) = minimize_topology(&evaluator, genome, cfg);
            out.genome = GenomePayload::Topology(minimized);
            report
        }
        GenomePayload::Workload(genome) => {
            let (minimized, report) = minimize_workload(&evaluator, genome, cfg);
            out.genome = GenomePayload::Workload(minimized);
            report
        }
    };
    // One final simulation refreshes the outcome, the digest and (for
    // scenarios) the per-flow fairness summary.
    let (outcome, digest, fairness) = out.replay_full(None);
    out.outcome = outcome;
    out.behavior_digest = digest;
    out.fairness = fairness;
    out.signature = BehaviorSignature::from_outcome(&out.outcome, out.link_rate_bps as f64);
    // The id names the behaviour, so it follows the refreshed signature.
    // Minimization preserves the behaviour up to bucket granularity, so the
    // id usually survives; when a bucket boundary is crossed, store the
    // result with `Corpus::update`, which removes the old file and applies
    // the keep-the-stronger dedup policy under the new id.
    out.id = crate::finding::finding_id(out.cca, out.mode, &out.signature);
    out.provenance.minimized = true;
    out.provenance.original_score = report.original_score;
    out.provenance.original_packets = report.original_packets;
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccfuzz_core::evaluate::EvalOutcome;
    use ccfuzz_netsim::time::{SimDuration, SimTime};

    /// A synthetic evaluator: score = fraction of "payload" packets present
    /// in the window [1s, 2s], plus noise packets contributing nothing.
    /// Minimization should strip everything outside the window.
    struct WindowEvaluator;

    impl Evaluator<TrafficGenome> for WindowEvaluator {
        fn evaluate(&self, genome: &TrafficGenome) -> EvalOutcome {
            let in_window = genome
                .timestamps
                .iter()
                .filter(|t| {
                    **t >= SimTime::from_millis(1_000) && **t <= SimTime::from_millis(2_000)
                })
                .count();
            EvalOutcome {
                score: in_window as f64,
                ..Default::default()
            }
        }
    }

    fn genome_with(times_ms: &[u64]) -> TrafficGenome {
        TrafficGenome {
            timestamps: times_ms
                .iter()
                .map(|&ms| SimTime::from_millis(ms))
                .collect(),
            duration: SimDuration::from_secs(5),
            max_packets: 10_000,
        }
    }

    #[test]
    fn ddmin_strips_irrelevant_packets() {
        // 6 payload packets inside the window, 14 noise packets outside.
        let mut times: Vec<u64> = (0..14).map(|i| 100 + i * 50).collect(); // 100..750ms
        times.extend([1_100, 1_200, 1_300, 1_400, 1_500, 1_600]);
        times.sort_unstable();
        let genome = genome_with(&times);

        let cfg = MinimizeConfig {
            retain_fraction: 1.0,
            ..Default::default()
        };
        let (min, report) = minimize_traffic(&WindowEvaluator, &genome, &cfg);
        assert_eq!(
            min.packet_count(),
            6,
            "only the window packets survive: {report:?}"
        );
        assert_eq!(report.minimized_score, report.original_score);
        assert_eq!(report.original_packets, 20);
        assert_eq!(report.minimized_packets, 6);
        min.validate().unwrap();
    }

    #[test]
    fn retention_threshold_allows_partial_shrink() {
        // Score = packets in window; retaining 50% allows dropping half the
        // payload.
        let times: Vec<u64> = (0..8).map(|i| 1_100 + i * 100).collect();
        let genome = genome_with(&times);
        let cfg = MinimizeConfig {
            retain_fraction: 0.5,
            ..Default::default()
        };
        let (min, report) = minimize_traffic(&WindowEvaluator, &genome, &cfg);
        assert!(min.packet_count() <= genome.packet_count());
        assert!(report.minimized_score >= report.threshold, "{report:?}");
        assert!(min.packet_count() >= 4, "cannot shrink below the threshold");
    }

    #[test]
    fn budget_is_respected() {
        let times: Vec<u64> = (0..200).map(|i| i * 20).collect();
        let genome = genome_with(&times);
        let cfg = MinimizeConfig {
            max_evaluations: 10,
            ..Default::default()
        };
        let (_, report) = minimize_traffic(&WindowEvaluator, &genome, &cfg);
        assert!(report.evaluations <= 10, "{report:?}");
    }

    #[test]
    fn empty_genome_is_a_fixed_point() {
        let genome = genome_with(&[]);
        let (min, report) = minimize_traffic(&WindowEvaluator, &genome, &MinimizeConfig::default());
        assert_eq!(min.packet_count(), 0);
        assert_eq!(report.minimized_packets, 0);
    }

    /// Link evaluator scoring how much service is missing from [0, 1s) — an
    /// "outage depth" toy objective that survives quantization.
    struct OutageEvaluator;

    impl Evaluator<LinkGenome> for OutageEvaluator {
        fn evaluate(&self, genome: &LinkGenome) -> EvalOutcome {
            let early = genome
                .timestamps
                .iter()
                .filter(|t| **t < SimTime::from_millis(1_000))
                .count();
            EvalOutcome {
                score: 1.0 / (1.0 + early as f64),
                ..Default::default()
            }
        }
    }

    #[test]
    fn link_minimization_preserves_count_and_threshold() {
        let mut rng = ccfuzz_netsim::rng::SimRng::new(7);
        let genome = LinkGenome::generate(
            2_000,
            SimDuration::from_secs(5),
            SimDuration::from_millis(50),
            &mut rng,
        );
        let cfg = MinimizeConfig {
            retain_fraction: 0.8,
            ..Default::default()
        };
        let (min, report) = minimize_link(&OutageEvaluator, &genome, &cfg);
        assert_eq!(min.packet_count(), genome.packet_count());
        assert!(report.minimized_score >= report.threshold, "{report:?}");
        min.validate().unwrap();
    }
}
