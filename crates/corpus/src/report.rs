//! Corpus summary reports (the `ccfuzz report` subcommand).

use crate::finding::GenomePayload;
use crate::store::{Corpus, CorpusError};
use ccfuzz_analysis::table::{mbps, per_flow_table, qdisc_table, text_table};

/// Renders a deterministic per-bucket summary of the corpus: one table per
/// (CCA, mode) bucket, findings sorted by descending score.
pub fn corpus_report(corpus: &Corpus) -> Result<String, CorpusError> {
    let buckets = corpus.buckets()?;
    if buckets.is_empty() {
        return Ok("corpus is empty\n".to_string());
    }
    let mut out = String::new();
    let mut total = 0usize;
    for ((cca, mode), findings) in &buckets {
        out.push_str(&format!(
            "== {cca} / {mode} ({} finding(s)) ==\n",
            findings.len()
        ));
        let rows: Vec<Vec<String>> = findings
            .iter()
            .map(|f| {
                vec![
                    f.id.clone(),
                    f.genome.packet_count().to_string(),
                    format!("{:.6}", f.outcome.score),
                    format!("{:.6}", f.outcome.performance_score),
                    format!("{:.6}", f.outcome.trace_score),
                    mbps(f.outcome.goodput_bps),
                    f.outcome.rto_count.to_string(),
                    if f.provenance.minimized {
                        format!(
                            "yes ({} -> {})",
                            f.provenance.original_packets,
                            f.genome.packet_count()
                        )
                    } else {
                        "no".to_string()
                    },
                ]
            })
            .collect();
        out.push_str(&text_table(
            &[
                "finding",
                "pkts",
                "score",
                "perf",
                "trace",
                "goodput",
                "rtos",
                "minimized",
            ],
            &rows,
        ));
        // AQM findings get a gateway-discipline table under the bucket.
        let with_qdisc: Vec<_> = findings
            .iter()
            .filter_map(|f| match &f.genome {
                GenomePayload::Scenario(s) => s.qdisc.map(|gene| (f, gene)),
                _ => None,
            })
            .collect();
        if !with_qdisc.is_empty() {
            out.push('\n');
            out.push_str(&qdisc_table(
                &with_qdisc
                    .iter()
                    .map(|(f, _)| f.id.clone())
                    .collect::<Vec<_>>(),
                &with_qdisc
                    .iter()
                    .map(|(_, g)| g.discipline.label())
                    .collect::<Vec<_>>(),
                &with_qdisc.iter().map(|(_, g)| g.ecn).collect::<Vec<_>>(),
                &with_qdisc
                    .iter()
                    .map(|(f, _)| f.outcome.score)
                    .collect::<Vec<_>>(),
                &with_qdisc
                    .iter()
                    .map(|(f, _)| f.outcome.goodput_bps)
                    .collect::<Vec<_>>(),
            ));
        }
        // Topology findings get a per-hop chain table under the bucket.
        for f in findings {
            if let GenomePayload::Topology(genome) = &f.genome {
                out.push_str(&format!("\n{}: {} hop(s)\n", f.id, genome.hop_count()));
                out.push_str(&genome.detail_table());
            }
        }
        // Fairness findings get a per-flow breakdown under the bucket table.
        for f in findings {
            if let Some(fairness) = &f.fairness {
                out.push_str(&format!(
                    "\n{}: jain={:.4} max_starvation={:.3}s\n",
                    f.id, fairness.jain_index, fairness.max_starvation_secs
                ));
                out.push_str(&per_flow_table(
                    &fairness.per_flow_cca,
                    &fairness.per_flow_goodput_bps,
                    &fairness.per_flow_delivered,
                ));
            }
        }
        out.push('\n');
        total += findings.len();
    }
    out.push_str(&format!(
        "{total} finding(s) in {} bucket(s)\n",
        buckets.len()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CorpusConfig;

    #[test]
    fn empty_corpus_reports_empty() {
        let dir = std::env::temp_dir().join(format!(
            "ccfuzz-report-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();
        assert_eq!(corpus_report(&corpus).unwrap(), "corpus is empty\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
