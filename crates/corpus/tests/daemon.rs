//! Process-level tests for the distributed orchestration layer: a real
//! `ccfuzzd` daemon driven over its HTTP socket, hunts sharded across
//! worker processes, a SIGKILL-induced fleet respawn that must resume from
//! the committed checkpoint, and the graceful SIGTERM drain.
//!
//! The load-bearing assertion throughout: a daemon hunt's fetched finding
//! payload is byte-identical to what a single-process `ccfuzz hunt` with
//! the same configuration prints to stdout.

use ccfuzz_cca::CcaKind;
use ccfuzz_core::campaign::FuzzMode;
use ccfuzz_corpus::daemon::{http_request, HuntSpec, HuntState, HuntStatus};
use ccfuzz_corpus::hunt::HuntConfig;
use ccfuzz_netsim::time::SimDuration;
use serde::value::{map_get, Value};
use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DAEMON_BIN: &str = env!("CARGO_BIN_EXE_ccfuzzd");
const CCFUZZ_BIN: &str = env!("CARGO_BIN_EXE_ccfuzz");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccfuzz-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(180);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A running daemon plus its resolved HTTP address.
struct Daemon {
    child: Child,
    addr: String,
}

fn start_daemon(root: &Path) -> Daemon {
    let child = Command::new(DAEMON_BIN)
        .arg("--root")
        .arg(root)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("ccfuzzd binary runs");
    let addr_file = root.join("daemon.addr");
    wait_until("the daemon to publish its address", || addr_file.exists());
    let addr = std::fs::read_to_string(&addr_file)
        .unwrap()
        .trim()
        .to_string();
    Daemon { child, addr }
}

/// SIGTERM the daemon and assert the graceful drain: exit code 0 and the
/// address file removed.
fn drain(mut daemon: Daemon, root: &Path) {
    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "sending SIGTERM failed");
    let exit = daemon.child.wait().unwrap();
    assert!(exit.success(), "SIGTERM drain must exit 0, got {exit}");
    assert!(
        !root.join("daemon.addr").exists(),
        "a drained daemon must remove its address file"
    );
}

/// The test campaign: deterministic, two islands, sized (via the scenario
/// duration) so generations take a noticeable slice of wall time in the
/// multi-worker tests.
fn test_spec(
    cca: CcaKind,
    mode: FuzzMode,
    generations: u32,
    seed: u64,
    workers: usize,
) -> HuntSpec {
    let mut config = HuntConfig::quick(cca, mode, generations, seed);
    config.duration = SimDuration::from_secs(if workers > 1 { 5 } else { 1 });
    config.ga.islands = 2;
    config.ga.population_per_island = 4;
    config.ga.threads = 2;
    HuntSpec {
        config,
        workers,
        checkpoint_every: 1,
        panic_budget: Some(100),
    }
}

/// Runs the single-process control hunt for `spec` and returns its exact
/// stdout payload.
fn control_payload(spec: &HuntSpec, corpus: &Path) -> Vec<u8> {
    let output = Command::new(CCFUZZ_BIN)
        .args([
            "hunt",
            "--cca",
            spec.config.cca.name(),
            "--mode",
            spec.config.mode.name(),
            "--generations",
            &spec.config.ga.generations.to_string(),
            "--seconds",
            &(spec.config.duration.as_secs_f64() as u64).to_string(),
            "--seed",
            &spec.config.ga.seed.to_string(),
            "--islands",
            &spec.config.ga.islands.to_string(),
            "--population",
            &spec.config.ga.population_per_island.to_string(),
            "--threads",
            &spec.config.ga.threads.to_string(),
            "--corpus",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("ccfuzz binary runs");
    assert!(
        output.status.success(),
        "control hunt failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty());
    output.stdout
}

fn submit(addr: &str, spec: &HuntSpec) -> String {
    let body = serde_json::to_string(spec).unwrap();
    let (code, reply) = http_request(addr, "POST", "/hunts", Some(&body)).unwrap();
    assert_eq!(code, 200, "submit rejected: {reply}");
    let value: Value = serde_json::from_str(reply.trim()).unwrap();
    let map = value.as_map("submit reply").unwrap();
    map_get(map, "id").and_then(String::from_value).unwrap()
}

fn hunt_status(addr: &str, id: &str) -> HuntStatus {
    let (code, reply) = http_request(addr, "GET", &format!("/hunts/{id}"), None).unwrap();
    assert_eq!(code, 200, "status failed: {reply}");
    serde_json::from_str(reply.trim()).unwrap()
}

fn terminal(state: HuntState) -> bool {
    !matches!(state, HuntState::Queued | HuntState::Running)
}

#[test]
fn single_worker_daemon_hunt_payload_matches_ccfuzz_hunt_byte_for_byte() {
    let dir = temp_dir("single");
    let spec = test_spec(CcaKind::Reno, FuzzMode::Traffic, 3, 7, 1);
    let control = control_payload(&spec, &dir.join("control-corpus"));

    let root = dir.join("daemon");
    let daemon = start_daemon(&root);
    let id = submit(&daemon.addr, &spec);
    wait_until("the hunt to finish", || {
        terminal(hunt_status(&daemon.addr, &id).state)
    });
    let status = hunt_status(&daemon.addr, &id);
    assert_eq!(
        status.state,
        HuntState::Completed,
        "hunt did not complete: {:?}",
        status.error
    );
    assert!(status.evaluations > 0);

    let (code, payload) =
        http_request(&daemon.addr, "GET", &format!("/hunts/{id}/findings"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        payload.as_bytes(),
        &control[..],
        "daemon payload differs from the single-process control"
    );

    // The telemetry stream is live JSONL with one snapshot per generation.
    let (code, stream) =
        http_request(&daemon.addr, "GET", &format!("/hunts/{id}/stream"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(stream.lines().count(), 3);
    assert!(stream.lines().all(|l| l.contains("\"generation\"")));

    // Unknown hunts are 404s, on every per-hunt endpoint.
    for path in ["/hunts/nope", "/hunts/nope/stream", "/hunts/nope/findings"] {
        let (code, _) = http_request(&daemon.addr, "GET", path, None).unwrap();
        assert_eq!(code, 404, "{path} should 404");
    }

    drain(daemon, &root);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigkilled_worker_respawns_from_checkpoint_and_matches_the_control() {
    let dir = temp_dir("sigkill");
    let spec = test_spec(CcaKind::Bbr, FuzzMode::Topology, 6, 33, 2);
    let control = control_payload(&spec, &dir.join("control-corpus"));

    let root = dir.join("daemon");
    let daemon = start_daemon(&root);
    let id = submit(&daemon.addr, &spec);

    // Wait for the fleet to be up, then SIGKILL one worker mid-campaign.
    wait_until("the fleet to spawn", || {
        let s = hunt_status(&daemon.addr, &id);
        s.worker_pids.len() == 2 || terminal(s.state)
    });
    let status = hunt_status(&daemon.addr, &id);
    assert!(
        !terminal(status.state),
        "hunt finished before the kill could land; enlarge the campaign"
    );
    let victim = status.worker_pids[0];
    let killed = Command::new("kill")
        .args(["-KILL", &victim.to_string()])
        .status()
        .unwrap();
    assert!(killed.success(), "sending SIGKILL failed");

    wait_until("the hunt to finish after the kill", || {
        terminal(hunt_status(&daemon.addr, &id).state)
    });
    let status = hunt_status(&daemon.addr, &id);
    assert_eq!(
        status.state,
        HuntState::Completed,
        "hunt did not complete after the kill: {:?}",
        status.error
    );
    assert!(
        status.restarts >= 1,
        "the killed worker must have forced at least one fleet respawn"
    );

    let (code, payload) =
        http_request(&daemon.addr, "GET", &format!("/hunts/{id}/findings"), None).unwrap();
    assert_eq!(code, 200);
    assert_eq!(
        payload.as_bytes(),
        &control[..],
        "respawned hunt's payload differs from the single-process control"
    );

    drain(daemon, &root);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_fixed_worker_count_replays_a_deterministic_trajectory() {
    let dir = temp_dir("determinism");
    let root = dir.join("daemon");
    let daemon = start_daemon(&root);

    // Same spec twice on one daemon: the payloads must be identical, and
    // the second merge into the shared corpus must dedup, not grow it.
    let spec = test_spec(CcaKind::Reno, FuzzMode::Link, 3, 11, 2);
    let first = submit(&daemon.addr, &spec);
    let second = submit(&daemon.addr, &spec);
    wait_until("both hunts to finish", || {
        terminal(hunt_status(&daemon.addr, &first).state)
            && terminal(hunt_status(&daemon.addr, &second).state)
    });
    for id in [&first, &second] {
        let status = hunt_status(&daemon.addr, id);
        assert_eq!(
            status.state,
            HuntState::Completed,
            "{id} did not complete: {:?}",
            status.error
        );
    }
    let (_, a) = http_request(
        &daemon.addr,
        "GET",
        &format!("/hunts/{first}/findings"),
        None,
    )
    .unwrap();
    let (_, b) = http_request(
        &daemon.addr,
        "GET",
        &format!("/hunts/{second}/findings"),
        None,
    )
    .unwrap();
    assert_eq!(a, b, "same spec, same worker count, different payloads");

    // Signature-level dedup: both hunts merged into the shared corpus, but
    // the identical finding is stored once.
    let findings = std::fs::read_dir(root.join("corpus").join("findings"))
        .unwrap()
        .count();
    assert_eq!(findings, 1, "duplicate findings must dedup on merge");

    drain(daemon, &root);
    let _ = std::fs::remove_dir_all(dir);
}
