//! Process-level crash-safety tests for the `ccfuzz` binary.
//!
//! These cover the half of the crash-safety contract that in-process tests
//! cannot: a real SIGKILL mid-campaign followed by `ccfuzz resume` must
//! reproduce the uninterrupted hunt byte-for-byte (stdout payload and
//! corpus contents), SIGINT must exit with the distinct graceful-shutdown
//! code after writing a resumable checkpoint, and injected evaluation
//! panics must surface as persisted artifacts.

use ccfuzz_corpus::checkpoint::{CampaignCheckpoint, PanicFinding};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_ccfuzz");

/// Exit code the CLI uses for a graceful (resumable) shutdown.
const EXIT_INTERRUPTED: i32 = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccfuzz-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic topology hunt sized so a generation takes a noticeable
/// slice of wall time (signals land mid-campaign) without making the test
/// slow.
fn hunt_args(corpus: &Path, generations: u32) -> Vec<String> {
    [
        "hunt",
        "--cca",
        "bbr",
        "--mode",
        "topology",
        "--generations",
        &generations.to_string(),
        "--seconds",
        "5",
        "--islands",
        "2",
        "--population",
        "4",
        "--threads",
        "2",
        "--seed",
        "33",
        "--corpus",
        corpus.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run(args: &[String]) -> Output {
    Command::new(BIN)
        .args(args)
        .env_remove("CCFUZZ_INJECT_EVAL_PANIC")
        .output()
        .expect("ccfuzz binary runs")
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// File name → bytes for every file in a directory (empty map if absent).
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries {
        let path = entry.unwrap().path();
        out.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        );
    }
    out
}

#[test]
fn sigkill_mid_hunt_then_resume_matches_the_control_byte_for_byte() {
    let dir = temp_dir("sigkill");
    let control_corpus = dir.join("control-corpus");
    let crash_corpus = dir.join("crash-corpus");
    let ck = dir.join("ck.json");

    let control = run(&hunt_args(&control_corpus, 8));
    assert!(control.status.success(), "control hunt fails");
    assert!(!control.stdout.is_empty());

    let mut args = hunt_args(&crash_corpus, 8);
    args.extend(["--checkpoint".into(), ck.to_str().unwrap().to_string()]);
    args.extend(["--checkpoint-every".into(), "1".into()]);
    let mut child = Command::new(BIN)
        .args(&args)
        .env_remove("CCFUZZ_INJECT_EVAL_PANIC")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    // SIGKILL as soon as the first checkpoint lands — no graceful path runs.
    wait_until("the first checkpoint", || ck.exists());
    let _ = child.kill();
    let killed = child.wait_with_output().unwrap();

    // The checkpoint on disk is complete and loadable (atomic writes), even
    // though the process died without warning. The dead process also left a
    // stale corpus lock, which resume must steal.
    CampaignCheckpoint::load(&ck).expect("checkpoint survives SIGKILL intact");

    let resumed = run(&["resume".to_string(), ck.to_str().unwrap().to_string()]);
    assert!(
        resumed.status.success(),
        "resume fails: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // Byte-identical trajectory: the resumed stdout payload is exactly the
    // control's. (If the kill raced past completion, the killed leg already
    // printed it and the resume re-emits the identical payload.)
    assert_eq!(resumed.stdout, control.stdout);
    assert!(
        killed.stdout.is_empty() || killed.stdout == control.stdout,
        "a killed hunt printed a payload that differs from the control"
    );

    // And the corpus contents are identical file-for-file.
    assert_eq!(
        dir_contents(&control_corpus.join("findings")),
        dir_contents(&crash_corpus.join("findings"))
    );
    let final_ck = CampaignCheckpoint::load(&ck).unwrap();
    assert!(final_ck.completed);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sigint_exits_with_the_graceful_shutdown_code_and_a_resumable_checkpoint() {
    let dir = temp_dir("sigint");
    let corpus = dir.join("corpus");
    let ck = dir.join("ck.json");

    let mut args = hunt_args(&corpus, 12);
    args.extend(["--checkpoint".into(), ck.to_str().unwrap().to_string()]);
    let child = Command::new(BIN)
        .args(&args)
        .env_remove("CCFUZZ_INJECT_EVAL_PANIC")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_until("the first checkpoint", || ck.exists());
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "sending SIGINT failed");
    let out = child.wait_with_output().unwrap();

    assert_eq!(
        out.status.code(),
        Some(EXIT_INTERRUPTED),
        "SIGINT must exit with the graceful-shutdown code"
    );
    // No payload on an interrupted hunt: stdout stays machine-clean.
    assert!(out.stdout.is_empty());
    // The graceful path released the corpus lock.
    assert!(!corpus.join("LOCK").exists());

    let interrupted = CampaignCheckpoint::load(&ck).expect("final checkpoint written");
    assert!(!interrupted.completed);
    assert!(interrupted.state.next_generation() < 12);

    // The checkpoint resumes to completion.
    let resumed = run(&["resume".to_string(), ck.to_str().unwrap().to_string()]);
    assert!(
        resumed.status.success(),
        "resume fails: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(!resumed.stdout.is_empty());
    assert!(CampaignCheckpoint::load(&ck).unwrap().completed);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn injected_panics_become_artifacts_and_the_budget_aborts_the_campaign() {
    let dir = temp_dir("panic");
    let corpus = dir.join("corpus");

    // Budget 0: the first caught panic aborts the campaign (exit 1), but
    // the panic artifact is persisted first. Single-threaded so the
    // injected panic ordinal is deterministic.
    let mut args = hunt_args(&corpus, 2);
    let t = args.iter().position(|a| a == "--threads").unwrap();
    args[t + 1] = "1".into();
    args.extend(["--panic-budget".into(), "0".into()]);
    let out = Command::new(BIN)
        .args(&args)
        .env("CCFUZZ_INJECT_EVAL_PANIC", "5")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("panic budget exhausted"), "{stderr}");

    let artifact = corpus.join("panics").join("panic-0001.json");
    let text = std::fs::read_to_string(&artifact).expect("panic artifact persisted");
    let parsed: PanicFinding = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed.ordinal, 1);
    assert!(parsed.message.contains("injected evaluation panic"));

    // A generous budget tolerates the same injection and completes.
    let corpus2 = dir.join("corpus2");
    let mut args = hunt_args(&corpus2, 2);
    let t = args.iter().position(|a| a == "--threads").unwrap();
    args[t + 1] = "1".into();
    let out = Command::new(BIN)
        .args(&args)
        .env("CCFUZZ_INJECT_EVAL_PANIC", "5")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty());
    assert!(corpus2.join("panics").join("panic-0001.json").exists());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_live_lock_holder_blocks_a_second_hunt() {
    let dir = temp_dir("lock");
    let corpus = dir.join("corpus");
    std::fs::create_dir_all(&corpus).unwrap();
    // A lock naming THIS (live) test process must not be stolen.
    std::fs::write(corpus.join("LOCK"), format!("{}\n", std::process::id())).unwrap();

    let out = run(&hunt_args(&corpus, 2));
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("locked by process"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}
