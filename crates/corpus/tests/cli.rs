//! End-to-end CLI tests for the `ccfuzz` binary, pinning the stdout
//! contract: stdout carries only the machine-readable payload (so
//! `ccfuzz hunt ... | jq` works), while progress chatter, telemetry status
//! lines and the phase report all go to stderr.

use ccfuzz_corpus::finding::Finding;
use ccfuzz_obs::Snapshot;
use std::path::PathBuf;
use std::process::Command;

fn ccfuzz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccfuzz"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccfuzz-cli-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs a tiny deterministic hunt and returns (corpus dir, parsed finding).
fn tiny_hunt(tag: &str, telemetry: Option<&PathBuf>) -> (PathBuf, Finding) {
    let dir = scratch_dir(tag);
    let mut cmd = ccfuzz();
    cmd.args([
        "hunt",
        "--cca",
        "reno",
        "--mode",
        "traffic",
        "--generations",
        "2",
        "--seconds",
        "2",
        "--seed",
        "1",
        "--threads",
        "2",
        "--islands",
        "2",
        "--population",
        "3",
        "--corpus",
    ])
    .arg(&dir);
    if let Some(path) = telemetry {
        cmd.arg("--telemetry").arg(path);
    }
    let out = cmd.output().expect("run ccfuzz hunt");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(out.status.success(), "hunt failed:\n{stderr}");
    // The whole of stdout must be one JSON document: the finding. A strict
    // deserialize both validates the schema and proves no chatter leaked.
    let finding: Finding = serde_json::from_str(stdout.trim())
        .unwrap_or_else(|e| panic!("hunt stdout is not a single finding JSON: {e}\n---\n{stdout}"));
    assert_eq!(
        stdout.trim().lines().count(),
        1,
        "hunt stdout must be a single line of JSON"
    );
    assert!(
        stderr.contains("hunting:"),
        "progress chatter must go to stderr"
    );
    (dir, finding)
}

#[test]
fn hunt_stdout_is_pure_json_and_telemetry_stream_is_valid() {
    let telemetry_path =
        std::env::temp_dir().join(format!("ccfuzz-cli-telemetry-{}.jsonl", std::process::id()));
    let (_dir, finding) = tiny_hunt("hunt", Some(&telemetry_path));
    assert!(!finding.id.is_empty());
    assert!(finding.outcome.score.is_finite());

    // One snapshot per generation, each a strict-schema JSONL record with
    // monotone generation numbers and live counters.
    let stream = std::fs::read_to_string(&telemetry_path).expect("telemetry stream written");
    let snapshots: Vec<Snapshot> = stream
        .lines()
        .map(|line| {
            serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("bad telemetry line: {e}\n---\n{line}"))
        })
        .collect();
    assert_eq!(snapshots.len(), 2, "one snapshot per generation");
    for (i, snap) in snapshots.iter().enumerate() {
        assert_eq!(snap.schema, ccfuzz_obs::telemetry::SNAPSHOT_SCHEMA);
        assert_eq!(snap.generation, i as u32);
        assert!(snap.evaluations > 0);
        assert!(snap.best_score.is_finite());
        assert_eq!(snap.island_best.len(), 2, "one best-score per island");
    }
    std::fs::remove_file(&telemetry_path).ok();
}

#[test]
fn workload_usage_errors_exit_2_and_name_the_valid_set() {
    // Unknown mode: exit 2, and the message names every valid mode so the
    // user can self-correct (workload must be in the set).
    let out = ccfuzz()
        .args(["hunt", "--cca", "reno", "--mode", "workloads"])
        .output()
        .expect("run ccfuzz hunt");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2:\n{stderr}");
    for mode in ["traffic", "link", "fairness", "aqm", "topology", "workload"] {
        assert!(
            stderr.contains(mode),
            "usage error must name `{mode}`:\n{stderr}"
        );
    }

    // --flows is only meaningful for fairness and workload hunts.
    let out = ccfuzz()
        .args([
            "hunt", "--cca", "reno", "--mode", "traffic", "--flows", "reno,bbr",
        ])
        .output()
        .expect("run ccfuzz hunt");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2:\n{stderr}");
    assert!(
        stderr.contains("--flows"),
        "error names the flag:\n{stderr}"
    );

    // A bad CCA inside the workload pool names the offender and the full
    // valid set, still on exit 2.
    let out = ccfuzz()
        .args([
            "hunt",
            "--cca",
            "reno",
            "--mode",
            "workload",
            "--flows",
            "reno,tahoe",
        ])
        .output()
        .expect("run ccfuzz hunt");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2:\n{stderr}");
    assert!(
        stderr.contains("unknown CCA `tahoe`"),
        "error names the offender:\n{stderr}"
    );
}

#[test]
fn workload_hunt_minimize_replay_report_roundtrip() {
    // The full workload-mode lifecycle through the binary: hunt persists a
    // finding, minimize shrinks it in place, replay --strict verifies the
    // stored digest still reproduces, and report lists the bucket.
    let dir = scratch_dir("workload");
    let out = ccfuzz()
        .args([
            "hunt",
            "--cca",
            "reno",
            "--mode",
            "workload",
            "--flows",
            "reno,cubic",
            "--generations",
            "2",
            "--seconds",
            "2",
            "--seed",
            "1",
            "--threads",
            "2",
            "--islands",
            "2",
            "--population",
            "3",
            "--corpus",
        ])
        .arg(&dir)
        .output()
        .expect("run ccfuzz hunt");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(out.status.success(), "workload hunt failed:\n{stderr}");
    let finding: Finding = serde_json::from_str(stdout.trim())
        .unwrap_or_else(|e| panic!("hunt stdout is not a single finding JSON: {e}\n---\n{stdout}"));
    assert!(
        stderr.contains("workload:"),
        "workload chatter goes to stderr:\n{stderr}"
    );

    let out = ccfuzz()
        .args([
            "minimize",
            "--id",
            &finding.id,
            "--budget",
            "40",
            "--corpus",
        ])
        .arg(&dir)
        .output()
        .expect("run ccfuzz minimize");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(out.status.success(), "minimize failed:\n{stderr}");

    let out = ccfuzz()
        .args(["replay", "--strict", "--corpus"])
        .arg(&dir)
        .output()
        .expect("run ccfuzz replay");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(
        out.status.success(),
        "strict replay failed:\n{stdout}\n{stderr}"
    );

    let out = ccfuzz()
        .args(["report", "--corpus"])
        .arg(&dir)
        .output()
        .expect("run ccfuzz report");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    assert!(out.status.success(), "report failed");
    assert!(
        stdout.contains("workload"),
        "report lists the workload bucket:\n{stdout}"
    );
}

#[test]
fn trace_subcommand_renders_timeline_and_exports() {
    let (dir, finding) = tiny_hunt("trace", None);
    let json_path = dir.join("trace.jsonl");
    let csv_path = dir.join("trace.csv");
    let out = ccfuzz()
        .args(["trace", &finding.id, "--corpus"])
        .arg(&dir)
        .arg("--json")
        .arg(&json_path)
        .arg("--csv")
        .arg(&csv_path)
        .output()
        .expect("run ccfuzz trace");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(out.status.success(), "trace failed:\n{stderr}");
    assert!(stdout.contains("timeline:"), "missing timeline:\n{stdout}");
    assert!(
        stdout.contains("per-hop queues:"),
        "missing queue table:\n{stdout}"
    );
    assert!(stderr.contains("replayed"), "replay note goes to stderr");

    let jsonl = std::fs::read_to_string(&json_path).expect("JSONL export written");
    assert!(!jsonl.trim().is_empty());
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"at\":") && line.contains("\"kind\":"),
            "bad JSONL event line: {line}"
        );
    }
    let csv = std::fs::read_to_string(&csv_path).expect("CSV export written");
    assert_eq!(
        csv.lines().next(),
        Some("at,kind,flow,hop,cwnd,in_flight,packets,bytes"),
        "CSV header drifted"
    );
    assert!(csv.lines().count() > 1, "CSV export has no rows");
}
