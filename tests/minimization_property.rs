//! Property tests for trace minimization: for arbitrary genomes, retention
//! fractions and (synthetic) objectives, minimization must never *grow* a
//! trace and must always retain at least the configured fraction of the
//! original score.
//!
//! The evaluators here are synthetic (no network simulation) so the
//! properties can be checked over many random cases quickly; the real
//! simulator-backed path is covered by `tests/corpus_regression.rs`.

use cc_fuzz::corpus::minimize::{minimize_link, minimize_traffic, MinimizeConfig};
use cc_fuzz::fuzz::evaluate::{EvalOutcome, Evaluator};
use cc_fuzz::fuzz::genome::{Genome, LinkGenome, TrafficGenome};
use cc_fuzz::netsim::rng::SimRng;
use cc_fuzz::netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Synthetic objective: the score is the number of packets inside a window,
/// dampened so that supersets never score worse (monotone), plus a small
/// reward for early packets. Parameterized so different cases exercise
/// different landscapes.
struct WindowCountEvaluator {
    window_start: SimTime,
    window_end: SimTime,
}

impl Evaluator<TrafficGenome> for WindowCountEvaluator {
    fn evaluate(&self, genome: &TrafficGenome) -> EvalOutcome {
        let in_window = genome
            .timestamps
            .iter()
            .filter(|t| **t >= self.window_start && **t <= self.window_end)
            .count() as f64;
        let early = genome
            .timestamps
            .iter()
            .filter(|t| **t < self.window_start)
            .count() as f64;
        EvalOutcome {
            score: in_window + 0.1 * early.sqrt(),
            ..Default::default()
        }
    }
}

struct LinkBurstEvaluator;

impl Evaluator<LinkGenome> for LinkBurstEvaluator {
    fn evaluate(&self, genome: &LinkGenome) -> EvalOutcome {
        // Score: largest service gap in seconds (an "outage depth" proxy).
        let max_gap = genome
            .timestamps
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .fold(0.0, f64::max);
        EvalOutcome {
            score: max_gap,
            ..Default::default()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traffic_minimization_never_grows_and_retains_score(
        seed in any::<u64>(),
        packets in 1usize..400,
        retain_pct in 50u64..100,
        window_start_ms in 0u64..2_000,
        window_len_ms in 100u64..2_000,
        budget in 5usize..120,
    ) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_secs(5);
        let genome = TrafficGenome::generate(packets, duration, &mut rng);
        let evaluator = WindowCountEvaluator {
            window_start: SimTime::from_millis(window_start_ms),
            window_end: SimTime::from_millis(window_start_ms + window_len_ms),
        };
        let cfg = MinimizeConfig {
            retain_fraction: retain_pct as f64 / 100.0,
            max_evaluations: budget,
            ..Default::default()
        };
        let original_score = evaluator.evaluate(&genome).score;
        let (minimized, report) = minimize_traffic(&evaluator, &genome, &cfg);

        // Invariant 1: the trace never grows.
        prop_assert!(minimized.packet_count() <= genome.packet_count(),
            "{} -> {}", genome.packet_count(), minimized.packet_count());
        // Invariant 2: the minimized score clears the retention threshold.
        let threshold = original_score * cfg.retain_fraction;
        let final_score = evaluator.evaluate(&minimized).score;
        prop_assert!(final_score >= threshold,
            "score {final_score} fell below threshold {threshold}: {report:?}");
        // Report is consistent with reality.
        prop_assert_eq!(report.minimized_packets as usize, minimized.packet_count());
        prop_assert_eq!(report.minimized_score, final_score);
        prop_assert!(report.evaluations <= budget as u64 + 1);
        // The result is still a valid genome.
        prop_assert!(minimized.validate().is_ok());
    }

    #[test]
    fn link_minimization_preserves_count_and_retains_score(
        seed in any::<u64>(),
        packets in 2usize..600,
        retain_pct in 50u64..100,
    ) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_secs(5);
        let genome = LinkGenome::generate(packets, duration, SimDuration::from_millis(50), &mut rng);
        let cfg = MinimizeConfig {
            retain_fraction: retain_pct as f64 / 100.0,
            ..Default::default()
        };
        let original_score = LinkBurstEvaluator.evaluate(&genome).score;
        let (minimized, report) = minimize_link(&LinkBurstEvaluator, &genome, &cfg);

        // Link genomes must keep their packet count (it defines the average
        // bandwidth) — "never increases" holds with equality.
        prop_assert_eq!(minimized.packet_count(), genome.packet_count());
        let threshold = original_score * cfg.retain_fraction;
        let final_score = LinkBurstEvaluator.evaluate(&minimized).score;
        prop_assert!(final_score >= threshold,
            "score {final_score} fell below threshold {threshold}: {report:?}");
        prop_assert!(minimized.validate().is_ok());
        prop_assert_eq!(report.original_packets, packets as u64);
    }
}
