//! Integration tests for the multi-hop topology engine: a 3-hop parking
//! lot with per-hop conservation and a short-flow advantage, plus the full
//! topology-mode corpus roundtrip (hunt -> minimize -> replay).

use cc_fuzz::cca::CcaKind;
use cc_fuzz::corpus::hunt::{hunt, HuntConfig};
use cc_fuzz::corpus::minimize::{minimize_finding, MinimizeConfig};
use cc_fuzz::corpus::replay::replay_findings;
use cc_fuzz::corpus::store::{Corpus, CorpusConfig, InsertOutcome};
use cc_fuzz::fuzz::campaign::{paper_sim_base, FuzzMode};
use cc_fuzz::netsim::sim::{run_multi_flow_simulation, FlowSpec};
use cc_fuzz::netsim::time::{SimDuration, SimTime};
use cc_fuzz::netsim::topology::{HopConfig, HopRange, Topology};

/// The acceptance scenario: a 3-hop parking lot where a long flow crosses
/// every hop and a short flow crosses only the middle (bottleneck) hop.
/// Verifies (a) per-hop conservation — everything a hop serves arrives at
/// the next hop, and everything enqueued is delivered or dropped — and
/// (b) the short flow, paying one bottleneck instead of three queues and a
/// third of the RTT, beats the long flow's goodput.
#[test]
fn three_hop_parking_lot_conserves_and_favours_the_short_flow() {
    let mut cfg = paper_sim_base(SimDuration::from_secs(10));
    cfg.record_events = false;
    let mut topology = Topology::chain(vec![
        HopConfig::fixed_rate(10_000_000, SimDuration::from_millis(10), 80),
        HopConfig::fixed_rate(8_000_000, SimDuration::from_millis(10), 80),
        HopConfig::fixed_rate(10_000_000, SimDuration::from_millis(10), 80),
    ]);
    // Flow 0: the long flow over all three hops. Flow 1: the short flow
    // crossing only hop 1 (the 8 Mbps bottleneck both compete for).
    topology.paths = vec![HopRange::full(3), HopRange::new(1, 1)];
    cfg.topology = Some(topology);
    let mss = cfg.mss;

    // Both flows stop 2 s before the end so every queue and every
    // inter-hop propagation pipe drains: the conservation checks below are
    // exact equalities, not inequalities-up-to-in-flight.
    let stop = Some(SimTime::from_secs_f64(8.0));
    let result = run_multi_flow_simulation(
        cfg,
        vec![
            FlowSpec {
                cc: CcaKind::Reno.build(10),
                start: SimTime::ZERO,
                stop,
            },
            FlowSpec {
                cc: CcaKind::Reno.build(10),
                start: SimTime::ZERO,
                stop,
            },
        ],
    );

    let hops = &result.stats.hop_counters;
    assert_eq!(hops.len(), 3);

    // (a) Conservation at every hop: enqueued == dequeued (the network
    // drained, so nothing is resident), and everything a hop served was
    // offered to the next stop. The short flow leaves after hop 1, so hop
    // 2's arrivals are hop 1's departures minus flow 1's deliveries.
    for (k, c) in hops.iter().enumerate() {
        assert_eq!(
            c.total_enqueued(),
            c.total_dequeued(),
            "hop {k} must drain completely"
        );
    }
    let f0_tx = result.stats.flows[0].summary.transmissions;
    let f1_tx = result.stats.flows[1].summary.transmissions;
    // Flow 0 enters at hop 0; flow 1 enters at hop 1.
    assert_eq!(hops[0].enqueued_cca + hops[0].dropped_cca, f0_tx);
    assert_eq!(
        hops[1].enqueued_cca + hops[1].dropped_cca,
        hops[0].dequeued_cca + f1_tx,
        "hop 1 sees flow 0's survivors plus all of flow 1"
    );
    // Flow 1 exits after hop 1: hop 2 sees only flow 0's survivors.
    let f1_delivered_at_sink = result.stats.flows[1].sink_received;
    assert_eq!(
        hops[2].enqueued_cca + hops[2].dropped_cca,
        hops[1].dequeued_cca - f1_delivered_at_sink,
        "hop 2 sees exactly what hop 1 passed of the long flow"
    );
    // Per-flow sink conservation: transmissions == deliveries + drops
    // (every hop's drops count toward the owning flow).
    for (i, f) in result.stats.flows.iter().enumerate() {
        assert_eq!(
            f.summary.transmissions,
            f.sink_received + f.summary.queue_drops,
            "flow {i}: every transmission is delivered or dropped"
        );
    }

    // (b) The short flow beats the long flow through the shared bottleneck.
    let goodputs = result.per_flow_goodput_bps(mss);
    assert!(
        goodputs[1] > goodputs[0] * 1.2,
        "short flow ({:.2} Mbps) must beat the 3-hop flow ({:.2} Mbps)",
        goodputs[1] / 1e6,
        goodputs[0] / 1e6
    );
    // Together they cannot exceed the shared 8 Mbps bottleneck.
    assert!(goodputs[0] + goodputs[1] < 8.5e6);
    // Both still make progress.
    assert!(goodputs[0] > 0.5e6);
}

#[test]
fn topology_hunt_minimize_replay_roundtrip() {
    let dir = std::env::temp_dir().join(format!(
        "ccfuzz-topo-roundtrip-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = Corpus::open_with(&dir, CorpusConfig::default()).unwrap();

    let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Topology, 2, 5);
    config.hops = 3;
    config.ga.islands = 2;
    config.ga.population_per_island = 3;
    config.duration = SimDuration::from_secs(2);

    // Hunt: the best genome persists as a topology finding.
    let (finding, decision) = hunt(&corpus, &config).unwrap();
    assert_eq!(decision, InsertOutcome::Added);
    assert!(finding.id.starts_with("reno-topology-"));
    finding.validate().unwrap();
    assert!(finding.behavior_digest != 0);
    let fairness = finding.fairness.as_ref().expect("per-flow summary");
    assert_eq!(
        fairness.per_flow_cca.len(),
        match &finding.genome {
            cc_fuzz::corpus::finding::GenomePayload::Topology(g) => g.flow_count(),
            other => panic!("expected a topology payload, got {other:?}"),
        }
    );

    // Disk roundtrip preserves the payload bit for bit.
    assert_eq!(corpus.get(&finding.id).unwrap(), finding);

    // Minimize: never grows the chain, never drops below the threshold.
    let cfg = MinimizeConfig {
        max_evaluations: 60,
        ..Default::default()
    };
    let (minimized, report) = minimize_finding(&finding, &cfg);
    minimized.validate().unwrap();
    assert!(report.minimized_score >= report.threshold);
    let (orig_hops, min_hops) = match (&finding.genome, &minimized.genome) {
        (
            cc_fuzz::corpus::finding::GenomePayload::Topology(a),
            cc_fuzz::corpus::finding::GenomePayload::Topology(b),
        ) => (a.hop_count(), b.hop_count()),
        _ => panic!("minimization must keep the topology payload"),
    };
    assert!(min_hops <= orig_hops, "minimization never grows the chain");
    assert!(minimized.genome.packet_count() <= finding.genome.packet_count());
    corpus.update(&finding.id, &minimized).unwrap();

    // Replay: deterministic, drift-free, digest-verified.
    let stored = corpus.load_all().unwrap();
    let report = replay_findings(&stored, None);
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.max_abs_drift, 0.0);
    // Byte-identical report across runs.
    assert_eq!(report.to_text(), replay_findings(&stored, None).to_text());

    let _ = std::fs::remove_dir_all(dir);
}
