//! Property-based tests (proptest) over the core data structures and
//! invariants: trace generation, genome operators, scoring helpers, the
//! deterministic PRNG and the bottleneck queue.

use cc_fuzz::analysis::timeseries::{mean_of_lowest_fraction, percentile, windowed_throughput_bps};
use cc_fuzz::fuzz::genome::{Genome, LinkGenome, TrafficGenome};
use cc_fuzz::fuzz::trace_gen::{dist_packets, DistPacketsParams};
use cc_fuzz::netsim::packet::DataPacket;
use cc_fuzz::netsim::queue::{DropTailQueue, QueueCapacity};
use cc_fuzz::netsim::rng::SimRng;
use cc_fuzz::netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dist_packets_count_sortedness_and_bounds(
        num in 0usize..3_000,
        duration_ms in 100u64..10_000,
        k_agg_ms in 1u64..500,
        enforce in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let params = DistPacketsParams {
            k_agg: SimDuration::from_millis(k_agg_ms),
            enforce_rate_bounds: enforce,
            ..Default::default()
        };
        let end = SimTime::from_millis(duration_ms);
        let ts = dist_packets(num, SimTime::ZERO, end, &params, &mut rng);
        prop_assert_eq!(ts.len(), num);
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(ts.iter().all(|&t| t <= end));
    }

    #[test]
    fn link_genome_mutation_preserves_count_and_validity(
        packets in 1usize..2_000,
        seed in any::<u64>(),
        mutations in 1usize..5,
    ) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_secs(3);
        let mut genome = LinkGenome::generate(packets, duration, SimDuration::from_millis(50), &mut rng);
        for _ in 0..mutations {
            genome = genome.mutate(&mut rng);
            prop_assert_eq!(genome.packet_count(), packets);
            prop_assert!(genome.validate().is_ok());
        }
    }

    #[test]
    fn link_annealing_preserves_count_and_validity(
        packets in 3usize..2_000,
        seed in any::<u64>(),
        window in 1usize..10,
        noise_us in 0u64..2_000,
    ) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_secs(3);
        let genome = LinkGenome::generate(packets, duration, SimDuration::from_millis(50), &mut rng);
        let annealed = genome.anneal(window, SimDuration::from_micros(noise_us), &mut rng);
        prop_assert_eq!(annealed.packet_count(), packets);
        prop_assert!(annealed.validate().is_ok());
    }

    #[test]
    fn traffic_genome_operators_respect_cap_and_validity(
        cap in 1usize..2_000,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_secs(3);
        let a = TrafficGenome::generate(cap, duration, &mut rng);
        let b = TrafficGenome::generate(cap, duration, &mut rng);
        prop_assert!(a.packet_count() <= cap);
        prop_assert!(a.validate().is_ok());

        let m = a.mutate(&mut rng);
        prop_assert!(m.packet_count() <= cap);
        prop_assert!(m.validate().is_ok());

        let child = a.crossover(&b, &mut rng).expect("traffic crossover is defined");
        prop_assert!(child.packet_count() <= cap);
        prop_assert!(child.validate().is_ok());
    }

    #[test]
    fn windowed_throughput_conserves_packets(
        times_ms in proptest::collection::vec(0u64..5_000, 0..400),
        window_ms in 50u64..1_000,
    ) {
        let times: Vec<SimTime> = {
            let mut v: Vec<SimTime> = times_ms.iter().map(|&ms| SimTime::from_millis(ms)).collect();
            v.sort_unstable();
            v
        };
        let duration = SimDuration::from_millis(5_001);
        let window = SimDuration::from_millis(window_ms);
        let mss = 1_000u32;
        let windows = windowed_throughput_bps(&times, mss, window, duration);
        // Total bytes implied by the windowed rates equals packets * mss.
        let total_bytes: f64 = windows.iter().map(|(_, bps)| bps * window.as_secs_f64() / 8.0).sum();
        let expected = times.len() as f64 * mss as f64;
        prop_assert!((total_bytes - expected).abs() < 1e-6 * expected.max(1.0),
            "conservation violated: {} vs {}", total_bytes, expected);
    }

    #[test]
    fn percentile_is_bounded_and_monotone(
        mut values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p_lo in 0.0f64..50.0,
        p_hi in 50.0f64..100.0,
    ) {
        let lo = percentile(&values, p_lo);
        let hi = percentile(&values, p_hi);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(lo >= values[0] - 1e-9);
        prop_assert!(hi <= values[values.len() - 1] + 1e-9);
        prop_assert!(lo <= hi + 1e-9);
        // The lowest-fraction mean never exceeds the overall mean.
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!(mean_of_lowest_fraction(&values, 0.2) <= mean + 1e-9);
    }

    #[test]
    fn queue_conservation_under_random_arrivals(
        sizes in proptest::collection::vec(100u32..1_600, 1..300),
        capacity in 1usize..64,
        dequeue_every in 1usize..8,
    ) {
        let mut queue = DropTailQueue::new(QueueCapacity::Packets(capacity));
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let pkt = DataPacket::cca(i as u64, size, false, SimTime::from_millis(i as u64));
            if queue.enqueue(pkt, SimTime::from_millis(i as u64)) {
                accepted += 1;
            } else {
                dropped += 1;
            }
            if i % dequeue_every == 0 && queue.dequeue().is_some() {
                dequeued += 1;
            }
        }
        let c = queue.counters();
        prop_assert_eq!(c.total_enqueued(), accepted);
        prop_assert_eq!(c.total_dropped(), dropped);
        prop_assert_eq!(c.total_dequeued(), dequeued);
        prop_assert_eq!(accepted, dequeued + queue.len() as u64);
        prop_assert!(queue.len() <= capacity);
    }

    #[test]
    fn rng_ranges_and_determinism(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range_u64(lo, lo + span);
            let y = b.gen_range_u64(lo, lo + span);
            prop_assert_eq!(x, y);
            prop_assert!((lo..lo + span).contains(&x));
            let f = a.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
            let _ = b.next_f64();
        }
    }
}

proptest! {
    // Full multi-flow simulations are orders of magnitude costlier than the
    // data-structure properties above, so this block runs fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multi_flow_conservation_across_n_flows(
        n_flows in 1usize..4,
        window in 2u64..40,
        queue_cap in 10usize..60,
        cross_packets in 0u64..400,
        stagger_ms in 0u64..1_000,
        seed in any::<u64>(),
    ) {
        // Total packets offered by N congestion-controlled flows equal the
        // packets the queue accepted plus the packets it dropped; accepted
        // packets are all either transmitted or still resident at the end.
        use cc_fuzz::netsim::sim::{run_multi_flow_simulation, FlowSpec};
        use cc_fuzz::netsim::cc::{reference_cc::MiniAimdCc, CongestionControl};
        use cc_fuzz::netsim::trace::TrafficTrace;

        let mut cfg = cc_fuzz::fuzz::campaign::paper_sim_base(SimDuration::from_secs(1));
        cfg.record_events = false;
        cfg.queue_capacity = QueueCapacity::Packets(queue_cap);
        let mut rng = SimRng::new(seed);
        let injections: Vec<SimTime> = (0..cross_packets)
            .map(|_| SimTime::from_micros(rng.gen_range_u64(0, 1_000_000)))
            .collect();
        let mut injections = injections;
        injections.sort_unstable();
        cfg.cross_traffic = TrafficTrace::new(injections.clone(), cfg.duration);

        let specs: Vec<FlowSpec> = (0..n_flows)
            .map(|i| FlowSpec {
                cc: Box::new(MiniAimdCc::new(window)) as Box<dyn CongestionControl>,
                start: SimTime::from_millis(i as u64 * stagger_ms),
                stop: None,
            })
            .collect();
        let result = run_multi_flow_simulation(cfg, specs);

        prop_assert_eq!(result.stats.flows.len(), n_flows);
        let c = result.stats.queue_counters;
        // Offered = enqueued + dropped, per the whole CCA population.
        let sent: u64 = result.stats.flows.iter().map(|f| f.summary.transmissions).sum();
        prop_assert_eq!(sent, c.enqueued_cca + c.dropped_cca);
        // Per-flow drop counters decompose the aggregate exactly.
        let drops: u64 = result.stats.flows.iter().map(|f| f.summary.queue_drops).sum();
        prop_assert_eq!(drops, c.dropped_cca);
        // Cross traffic: every injection reached the gateway.
        prop_assert_eq!(
            c.enqueued_cross + c.dropped_cross,
            injections.len() as u64
        );
        // The queue conserves packets: dequeued + residual = enqueued, and
        // the residual fits in the configured capacity.
        let residual = c.total_enqueued() - c.total_dequeued();
        prop_assert!(residual as usize <= queue_cap);
        // Everything the link carried either arrived at a sink or was still
        // in flight (on the link or propagating) when the clock stopped.
        let arrived: u64 = result.stats.flows.iter().map(|f| f.sink_received).sum::<u64>()
            + result.stats.cross_delivered;
        prop_assert!(arrived <= c.total_dequeued());
    }

    #[test]
    fn dynamic_flow_conservation_under_churn(
        rate in 20.0f64..150.0,
        on_off in any::<bool>(),
        n_static in 1usize..3,
        max_concurrent in 4u32..40,
        min_packets in 1u64..4,
        size_span in 4u64..200,
        queue_cap in 10usize..60,
        seed in any::<u64>(),
    ) {
        // The dynamic-flow lifecycle invariants, under randomized arrival
        // processes and size distributions:
        //  * the active-set bookkeeping is exact — every spawned flow is
        //    either completed or still active at the end, never both;
        //  * exactly one FCT sample is recorded per completion;
        //  * per-flow packet conservation holds at recycle (tx == delivered
        //    + dropped once the flow's last packet leaves the network) —
        //    checked per flow by a debug assertion inside the recycler,
        //    which this debug-profile test exercises on every recycle, and
        //    here in aggregate over all recycled flows;
        //  * warm scratch reuse replays the identical behaviour digest.
        use cc_fuzz::netsim::cc::reference_cc::MiniAimdCc;
        use cc_fuzz::netsim::sim::{run_workload_simulation_pooled, FlowSpec, SimScratch};
        use cc_fuzz::netsim::workload::{ArrivalConfig, ArrivalProcess, SizeDistribution};

        let mut cfg = cc_fuzz::fuzz::campaign::paper_sim_base(SimDuration::from_secs(1));
        cfg.record_events = false;
        cfg.queue_capacity = QueueCapacity::Packets(queue_cap);
        cfg.seed = seed;
        cfg.arrivals = Some(ArrivalConfig {
            process: if on_off {
                ArrivalProcess::OnOff {
                    rate_per_sec: rate,
                    mean_on_secs: 0.2,
                    mean_off_secs: 0.1,
                }
            } else {
                ArrivalProcess::Poisson { rate_per_sec: rate }
            },
            size: SizeDistribution {
                shape: 1.2,
                min_packets,
                max_packets: min_packets + size_span,
            },
            mice_threshold_packets: 32,
            max_concurrent,
            max_arrivals: 10_000,
        });

        let run = |scratch: &mut SimScratch<MiniAimdCc>| {
            let mut specs: Vec<FlowSpec<MiniAimdCc>> = (0..n_static)
                .map(|i| FlowSpec {
                    cc: MiniAimdCc::new(8),
                    start: SimTime::from_millis(i as u64 * 50),
                    stop: None,
                })
                .collect();
            let mut protos = vec![MiniAimdCc::new(4), MiniAimdCc::new(8)];
            run_workload_simulation_pooled(cfg.clone(), &mut specs, &mut protos, scratch)
        };
        let mut scratch = SimScratch::default();
        let result = run(&mut scratch);

        // Static flows keep their per-flow stats slots regardless of churn.
        prop_assert_eq!(result.stats.flows.len(), n_static);
        let w = result.stats.workload().expect("workload stats present");
        // Active-set accounting: completed flows leave the active set, so
        // the spawn count decomposes exactly and nothing is counted twice.
        prop_assert_eq!(w.spawned, w.completed + w.active_at_end);
        // Exactly one FCT sample per completion, across both size classes.
        prop_assert_eq!(w.fct_count(), w.completed);
        // The sample reservoir is a bounded subset of the completions.
        prop_assert!(w.samples.len() as u64 <= w.completed);
        prop_assert!(w.samples.len() <= cc_fuzz::netsim::stats::WorkloadStats::MAX_SAMPLES);
        // Aggregate packet conservation over every recycled flow.
        prop_assert_eq!(w.completed_tx, w.completed_delivered + w.completed_dropped);
        let spawned = w.spawned;
        let digest = result.stats.digest();

        // A second run through the warm scratch (slab, calendar, pools all
        // recycled) must replay the byte-identical behaviour.
        scratch.recycle_stats(result.stats);
        let again = run(&mut scratch);
        prop_assert_eq!(again.stats.workload().expect("workload stats").spawned, spawned);
        prop_assert_eq!(again.stats.digest(), digest);
    }
}

/// Case count override used by the CI property job (and local deep sweeps):
/// `CCFUZZ_PROPTEST_CASES=1000 cargo test --release --test property_based`.
fn env_cases(default: u32) -> ProptestConfig {
    let n = std::env::var("CCFUZZ_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    ProptestConfig::with_cases(n)
}

proptest! {
    // Each case is a full multi-flow simulation, so the in-tree default is
    // modest; the CI property job raises it to 1000 via the env override.
    #![proptest_config(env_cases(24))]

    #[test]
    fn ecn_conservation_across_all_qdiscs(
        qdisc_kind in 0usize..3,
        ecn in any::<bool>(),
        n_flows in 1usize..4,
        cca_raw in collection::vec(0usize..7, 3..4),
        queue_cap in 20usize..80,
        cross_packets in 0u64..300,
        red_min in 5usize..40,
        red_span in 5usize..40,
        red_p in 0.05f64..1.0,
        codel_target_ms in 1u64..30,
        codel_interval_ms in 20u64..200,
        seed in any::<u64>(),
    ) {
        // End-to-end ECN conservation: every CE mark applied at the gateway
        // is observed by exactly one receiver and echoed exactly once — no
        // mark is ever lost or double-counted — and every transmission is
        // either delivered or dropped, under all three queue disciplines.
        //
        // Flows stop at 40% of the scenario and cross traffic ends by 30%,
        // leaving >1 s for the queue, the link and the delayed-ACK timers to
        // drain completely; with an empty network the conservation laws are
        // exact equalities rather than inequalities.
        use cc_fuzz::cca::CcaKind;
        use cc_fuzz::netsim::queue::Qdisc;
        use cc_fuzz::netsim::sim::{run_multi_flow_simulation, FlowSpec};
        use cc_fuzz::netsim::trace::TrafficTrace;

        let duration = SimDuration::from_secs(2);
        let mut cfg = cc_fuzz::fuzz::campaign::paper_sim_base(duration);
        cfg.record_events = false;
        cfg.queue_capacity = QueueCapacity::Packets(queue_cap);
        cfg.seed = seed;
        cfg.ecn_enabled = ecn;
        cfg.qdisc = match qdisc_kind {
            0 => Qdisc::DropTail,
            1 => Qdisc::Red {
                min_thresh: red_min,
                max_thresh: red_min + red_span,
                mark_probability: red_p,
            },
            _ => Qdisc::CoDel {
                target: SimDuration::from_millis(codel_target_ms),
                interval: SimDuration::from_millis(codel_interval_ms),
            },
        };
        cfg.validate().unwrap();

        let mut rng = SimRng::new(seed ^ 0x5eed);
        let injections: Vec<SimTime> = {
            let mut v: Vec<SimTime> = (0..cross_packets)
                .map(|_| SimTime::from_micros(rng.gen_range_u64(0, 600_000)))
                .collect();
            v.sort_unstable();
            v
        };
        cfg.cross_traffic = TrafficTrace::new(injections.clone(), duration);

        let stop = SimTime::from_millis(800);
        let specs: Vec<FlowSpec<cc_fuzz::cca::CcaDispatch>> = (0..n_flows)
            .map(|i| FlowSpec {
                cc: CcaKind::ALL[cca_raw[i % cca_raw.len()]].build_dispatch(10),
                start: SimTime::from_millis(i as u64 * 100),
                stop: Some(stop),
            })
            .collect();
        let result = run_multi_flow_simulation(cfg, specs);
        prop_assert!(!result.stats.truncated);

        let c = result.stats.queue_counters;
        let mut total_marked = 0u64;
        for (i, f) in result.stats.flows.iter().enumerate() {
            let s = &f.summary;
            // Transmission conservation: with the network fully drained,
            // every transmitted packet was delivered to the sink or dropped
            // at the gateway (tail or AQM head drop) — nothing is in queue
            // or in flight.
            prop_assert_eq!(
                s.transmissions,
                f.sink_received + s.queue_drops,
                "flow {}: tx {} != sink {} + drops {}",
                i, s.transmissions, f.sink_received, s.queue_drops
            );
            // Mark conservation: every CE mark applied at the gateway
            // reached the receiver, and the receiver echoed each exactly
            // once.
            prop_assert_eq!(s.ce_marked, s.ce_received, "flow {i}: marks lost in transit");
            prop_assert_eq!(s.ce_received, s.ece_echoed, "flow {i}: echoes lost or duplicated");
            // The sender can miss echoes whose ACKs arrived after its stop
            // time, but can never see more than were sent.
            prop_assert!(s.ece_acked <= s.ece_echoed);
            if !ecn {
                prop_assert_eq!(s.ce_marked, 0, "marks without ECN negotiation");
            }
            total_marked += s.ce_marked;
        }
        // Per-flow mark counters decompose the queue aggregate exactly, and
        // the non-ECN-capable cross traffic is never marked.
        prop_assert_eq!(c.marked_cca, total_marked);
        prop_assert_eq!(c.marked_cross, 0);
        // Cross traffic: every injection is either delivered or dropped,
        // exactly once (the simulation-level counters attribute a CoDel
        // head drop to the packet once, unlike the raw queue counters,
        // where a head-dropped packet appears as both enqueued and
        // dropped).
        prop_assert_eq!(
            result.stats.cross_delivered + result.stats.cross_dropped,
            injections.len() as u64
        );
        prop_assert!(c.enqueued_cross <= injections.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Observability: the metric registry's sharded histograms and counters must
// aggregate losslessly regardless of how work was split across workers.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_order_independent_and_lossless(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
        shards in 1usize..8,
    ) {
        use cc_fuzz::obs::{Histogram, LocalHistogram};

        // Reference: record everything directly into one histogram.
        let direct = Histogram::new();
        for &v in &values {
            direct.record(v);
        }

        // Shard round-robin, then merge the shards in two opposite orders.
        let mut locals: Vec<LocalHistogram> =
            (0..shards).map(|_| LocalHistogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            locals[i % shards].record(v);
        }
        let forward = Histogram::new();
        for shard in &locals {
            forward.merge_local(shard);
        }
        let reverse = Histogram::new();
        for shard in locals.iter().rev() {
            reverse.merge_local(shard);
        }
        prop_assert_eq!(forward.snapshot(), direct.snapshot());
        prop_assert_eq!(reverse.snapshot(), direct.snapshot());

        // Lossless aggregates, and percentiles within bucket error of a
        // sorted-Vec reference: exact below 16; above, the within-bucket
        // interpolated estimate stays inside the (≤ 25 % wide) bucket that
        // holds the exact rank value, so the relative error is bounded on
        // *both* sides (the estimate may sit above or below the exact
        // value, unlike the old bucket-floor reader).
        let snap = forward.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let exact = sorted[rank - 1];
            let approx = snap.percentile(p);
            prop_assert!(
                (snap.min..=snap.max).contains(&approx),
                "p{}: approx {} outside observed range",
                p, approx
            );
            if exact < 16 {
                prop_assert_eq!(approx, exact, "p{} must be exact below 16", p);
            } else {
                let err = (exact as f64 - approx as f64).abs() / exact as f64;
                prop_assert!(
                    err <= 0.25,
                    "p{}: approx {} more than one bucket away from exact {}",
                    p, approx, exact
                );
            }
        }
    }
}

proptest! {
    // Thread-spawning cases are heavier; fewer of them suffice.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_counters_match_single_threaded_totals(
        increments in proptest::collection::vec(0u64..1_000, 1..200),
        threads in 1usize..6,
    ) {
        use cc_fuzz::obs::{Counter, Histogram, LocalHistogram};
        use std::sync::Arc;

        let expected: u64 = increments.iter().sum();
        let counter = Arc::new(Counter::new());
        let histogram = Arc::new(Histogram::new());
        let chunks: Vec<Vec<u64>> = (0..threads)
            .map(|t| increments.iter().copied().skip(t).step_by(threads).collect())
            .collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let counter = Arc::clone(&counter);
                let histogram = Arc::clone(&histogram);
                std::thread::spawn(move || {
                    let mut shard = LocalHistogram::new();
                    for v in chunk {
                        counter.add(v);
                        shard.record(v);
                    }
                    histogram.merge_local(&shard);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(counter.get(), expected);
        let concurrent = histogram.snapshot();
        prop_assert_eq!(concurrent.count, increments.len() as u64);
        prop_assert_eq!(concurrent.sum, expected);

        // A single-threaded recording of the same values produces the
        // byte-identical snapshot.
        let reference = Histogram::new();
        for &v in &increments {
            reference.record(v);
        }
        prop_assert_eq!(reference.snapshot(), concurrent);
    }
}
