//! End-to-end genetic-algorithm integration tests: small but real campaigns
//! over real simulations, checking that the GA actually finds adversarial
//! traces and that campaigns are reproducible.

use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::genome::{Genome, TrafficGenome};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn small_ga(seed: u64, generations: u32) -> GaParams {
    let mut ga = GaParams::quick();
    ga.islands = 3;
    ga.population_per_island = 6;
    ga.generations = generations;
    ga.seed = seed;
    ga
}

#[test]
fn traffic_fuzzing_finds_traces_that_hurt_reno() {
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(5, 8));
    let result = campaign.run_traffic();

    // Baseline: Reno with no cross traffic.
    let empty = TrafficGenome {
        timestamps: vec![],
        duration,
        max_packets: campaign.traffic_max_packets,
    };
    let evaluator = campaign.evaluator();
    let baseline = evaluator.simulate_traffic(&empty, false);
    let adversarial = evaluator.simulate_traffic(&result.best_genome, false);

    assert!(
        adversarial.stats.flow.delivered_packets < baseline.stats.flow.delivered_packets,
        "the best evolved trace must reduce Reno's delivery ({} vs baseline {})",
        adversarial.stats.flow.delivered_packets,
        baseline.stats.flow.delivered_packets
    );
    assert!(
        result.best_outcome.performance_score > 0.2,
        "fitness should reflect meaningful degradation, got {}",
        result.best_outcome.performance_score
    );
    result.best_genome.validate().unwrap();
    assert!(result.best_genome.packet_count() <= campaign.traffic_max_packets);
}

#[test]
fn fitness_improves_over_generations() {
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(6, 10));
    let result = campaign.run_traffic();
    let first = result.history.first().unwrap().best_score;
    let last = result.history.last().unwrap().best_score;
    assert!(
        last >= first,
        "elitism guarantees monotone best score: {first} -> {last}"
    );
    // The mean of the population should also move upward over the run.
    let first_mean = result.history.first().unwrap().mean_score;
    let last_mean = result.history.last().unwrap().mean_score;
    assert!(
        last_mean > first_mean,
        "selection pressure should raise the population mean: {first_mean:.3} -> {last_mean:.3}"
    );
}

#[test]
fn link_fuzzing_finds_service_curves_that_hurt_reno() {
    let duration = SimDuration::from_secs(3);
    let mut ga = small_ga(9, 8);
    ga.anneal = true;
    let campaign = Campaign::paper_standard(FuzzMode::Link, CcaKind::Reno, duration, ga);
    let result = campaign.run_link();
    // The evolved 12 Mbps-average service curve must hurt Reno noticeably
    // compared to a smooth 12 Mbps link.
    assert!(
        result.best_outcome.performance_score > 0.2,
        "link fuzzing should find a harmful service curve, score {}",
        result.best_outcome.performance_score
    );
    // Link genomes preserve their packet budget (average bandwidth) exactly.
    let expected =
        cc_fuzz::fuzz::trace_gen::packets_for_rate(12_000_000, campaign.sim.mss, duration);
    assert_eq!(result.best_genome.packet_count(), expected);
    result.best_genome.validate().unwrap();
}

#[test]
fn campaigns_are_reproducible_from_their_seed() {
    let duration = SimDuration::from_secs(2);
    let run = || {
        let campaign =
            Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(42, 4));
        let result = campaign.run_traffic();
        (
            result.best_outcome.delivered_packets,
            result.best_outcome.sent_packets,
            format!("{:.6}", result.best_outcome.score),
            result.total_evaluations,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_minimality_pressure_keeps_traffic_small() {
    // With the trace-score component enabled (the default), the best trace
    // should not simply be "saturate the link with the maximum packet budget".
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(13, 10));
    let result = campaign.run_traffic();
    assert!(
        result.best_genome.packet_count() < campaign.traffic_max_packets,
        "minimality pressure should keep the trace below the cap ({} vs {})",
        result.best_genome.packet_count(),
        campaign.traffic_max_packets
    );
}
