//! End-to-end genetic-algorithm integration tests: small but real campaigns
//! over real simulations, checking that the GA actually finds adversarial
//! traces and that campaigns are reproducible.

use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{Campaign, FuzzMode};
use cc_fuzz::fuzz::genome::{Genome, TrafficGenome};
use cc_fuzz::fuzz::GaParams;
use cc_fuzz::netsim::time::SimDuration;

fn small_ga(seed: u64, generations: u32) -> GaParams {
    let mut ga = GaParams::quick();
    ga.islands = 3;
    ga.population_per_island = 6;
    ga.generations = generations;
    ga.seed = seed;
    ga
}

#[test]
fn traffic_fuzzing_finds_traces_that_hurt_reno() {
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(5, 8));
    let result = campaign.run_traffic();

    // Baseline: Reno with no cross traffic.
    let empty = TrafficGenome {
        timestamps: vec![],
        duration,
        max_packets: campaign.traffic_max_packets,
    };
    let evaluator = campaign.evaluator();
    let baseline = evaluator.simulate_traffic(&empty, false);
    let adversarial = evaluator.simulate_traffic(&result.best_genome, false);

    assert!(
        adversarial.stats.flow().delivered_packets < baseline.stats.flow().delivered_packets,
        "the best evolved trace must reduce Reno's delivery ({} vs baseline {})",
        adversarial.stats.flow().delivered_packets,
        baseline.stats.flow().delivered_packets
    );
    assert!(
        result.best_outcome.performance_score > 0.2,
        "fitness should reflect meaningful degradation, got {}",
        result.best_outcome.performance_score
    );
    result.best_genome.validate().unwrap();
    assert!(result.best_genome.packet_count() <= campaign.traffic_max_packets);
}

#[test]
fn fitness_improves_over_generations() {
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(6, 10));
    let result = campaign.run_traffic();
    let first = result.history.first().unwrap().best_score;
    let last = result.history.last().unwrap().best_score;
    assert!(
        last >= first,
        "elitism guarantees monotone best score: {first} -> {last}"
    );
    // The mean of the population should also move upward over the run.
    let first_mean = result.history.first().unwrap().mean_score;
    let last_mean = result.history.last().unwrap().mean_score;
    assert!(
        last_mean > first_mean,
        "selection pressure should raise the population mean: {first_mean:.3} -> {last_mean:.3}"
    );
}

#[test]
fn link_fuzzing_finds_service_curves_that_hurt_reno() {
    let duration = SimDuration::from_secs(3);
    let mut ga = small_ga(9, 8);
    ga.anneal = true;
    let campaign = Campaign::paper_standard(FuzzMode::Link, CcaKind::Reno, duration, ga);
    let result = campaign.run_link();
    // The evolved 12 Mbps-average service curve must hurt Reno noticeably
    // compared to a smooth 12 Mbps link.
    assert!(
        result.best_outcome.performance_score > 0.2,
        "link fuzzing should find a harmful service curve, score {}",
        result.best_outcome.performance_score
    );
    // Link genomes preserve their packet budget (average bandwidth) exactly.
    let expected =
        cc_fuzz::fuzz::trace_gen::packets_for_rate(12_000_000, campaign.sim.mss, duration);
    assert_eq!(result.best_genome.packet_count(), expected);
    result.best_genome.validate().unwrap();
}

#[test]
fn campaigns_are_reproducible_from_their_seed() {
    // The evaluation chunking must make thread count irrelevant: the same
    // seed yields the identical campaign — same best genome, same history —
    // whether evaluated on 1 worker or 4.
    let duration = SimDuration::from_secs(2);
    let run = |threads: usize| {
        let mut ga = small_ga(42, 4);
        ga.threads = threads;
        let campaign = Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, ga);
        let result = campaign.run_traffic();
        (
            result.best_genome.timestamps.clone(),
            result.best_outcome,
            result.history,
            result.total_evaluations,
        )
    };
    let single = run(1);
    assert_eq!(single, run(1), "same seed, same thread count");
    assert_eq!(single, run(4), "thread count must not change the outcome");
}

#[test]
fn fairness_campaign_finds_unfair_multi_flow_scenarios() {
    // End-to-end acceptance scenario: BBR vs. Reno on the paper's 12 Mbps /
    // 20 ms dumbbell, evolved toward unfairness through `Campaign`.
    let duration = SimDuration::from_secs(2);
    let mut ga = small_ga(17, 3);
    ga.islands = 2;
    ga.population_per_island = 4;
    let campaign = Campaign::paper_fairness(vec![CcaKind::Bbr, CcaKind::Reno], duration, ga);
    let result = campaign.run_fairness();
    result.best_genome.validate().unwrap();
    assert!(result.best_genome.flow_count() >= 2);

    // The evolved scenario must be measurably unfair: BBR vs. Reno on a
    // shared drop-tail queue splits the link badly even before fuzzing, and
    // the GA only amplifies it.
    let evaluator = campaign.evaluator();
    let replay = evaluator.simulate_scenario(&result.best_genome, false);
    let breakdown = cc_fuzz::fuzz::scoring::fairness_breakdown(&replay, campaign.sim.mss);
    assert_eq!(
        breakdown.per_flow_goodput_bps.len(),
        result.best_genome.flow_count()
    );
    assert!(
        breakdown.jain_index < 0.9,
        "the GA should find a skewed split, jain = {}",
        breakdown.jain_index
    );
    assert!(
        result.best_outcome.performance_score > 0.1,
        "unfairness score {}",
        result.best_outcome.performance_score
    );
    // Scenario-level determinism: re-simulating the winning scenario
    // reproduces its recorded outcome exactly. (Whole-campaign determinism
    // across thread counts is covered by `campaigns_are_reproducible_from_
    // their_seed` and the fuzzer unit tests; re-running the full fairness
    // GA here would double the cost of the most expensive test in the
    // suite.)
    use cc_fuzz::fuzz::evaluate::{EvalOutcome, Evaluator};
    let again: EvalOutcome = Evaluator::evaluate(&evaluator, &result.best_genome);
    assert_eq!(again, result.best_outcome);
}

#[test]
fn trace_minimality_pressure_keeps_traffic_small() {
    // With the trace-score component enabled (the default), the best trace
    // should not simply be "saturate the link with the maximum packet budget".
    let duration = SimDuration::from_secs(3);
    let campaign =
        Campaign::paper_standard(FuzzMode::Traffic, CcaKind::Reno, duration, small_ga(13, 10));
    let result = campaign.run_traffic();
    assert!(
        result.best_genome.packet_count() < campaign.traffic_max_packets,
        "minimality pressure should keep the trace below the cap ({} vs {})",
        result.best_genome.packet_count(),
        campaign.traffic_max_packets
    );
}
