//! Integration tests for the paper's §4 findings: the BBR probe-clocking
//! interaction (§4.1), the NS3 CUBIC slow-start bug (§4.2) and the Reno
//! low-rate-attack pattern (§4.3), each reproduced with a deterministic
//! hand-crafted trace (the GA-driven versions live in the figure binaries).

use cc_fuzz::analysis::report::{retransmission_triggered_rounds, spurious_retransmissions};
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::{paper_sim_base, PAPER_LINK_RATE_BPS};
use cc_fuzz::fuzz::genome::TrafficGenome;
use cc_fuzz::fuzz::scoring::ScoringConfig;
use cc_fuzz::fuzz::SimEvaluator;
use cc_fuzz::netsim::stats::TransportEvent;
use cc_fuzz::netsim::time::{SimDuration, SimTime};

/// The §4.1 adversarial cross-traffic pattern used by the fig4c binary: two
/// sustained pulses at twice the link rate, the first causing a loss whose
/// retransmission is also lost, the second pinning the queue full around the
/// resulting RTO so the pre-RTO packets' SACKs arrive just after it.
fn bbr_stall_trace(duration: SimDuration) -> TrafficGenome {
    let mut ts = Vec::new();
    for (start_ms, end_ms) in [(1_000u64, 1_250u64), (2_000, 2_300)] {
        let mut t = start_ms * 1_000;
        while t < end_ms * 1_000 {
            ts.push(SimTime::from_micros(t));
            t += 500;
        }
    }
    let max = ts.len() * 2;
    TrafficGenome {
        timestamps: ts,
        duration,
        max_packets: max,
    }
}

fn evaluator(cca: CcaKind, duration: SimDuration) -> SimEvaluator {
    SimEvaluator::new(
        paper_sim_base(duration),
        cca,
        ScoringConfig::low_throughput_default(PAPER_LINK_RATE_BPS as f64),
        PAPER_LINK_RATE_BPS,
    )
}

#[test]
fn bbr_probe_clocking_is_broken_by_spurious_retransmissions() {
    let duration = SimDuration::from_secs(5);
    let genome = bbr_stall_trace(duration);
    let run = evaluator(CcaKind::Bbr, duration).simulate_traffic(&genome, true);

    assert!(
        run.stats.flow().rto_count >= 1,
        "the crafted trace must force an RTO"
    );
    let spurious = spurious_retransmissions(&run.stats, SimDuration::from_millis(100));
    assert!(
        spurious >= 10,
        "expected a cascade of spurious retransmissions after the RTO, got {spurious}"
    );
    let broken_rounds = retransmission_triggered_rounds(&run.stats);
    assert!(
        broken_rounds >= 10,
        "expected at least 10 probe rounds ended by retransmitted samples \
         (enough to expire the bandwidth max-filter), got {broken_rounds}"
    );
    // The flow must visibly lose throughput relative to the clean baseline.
    let clean = evaluator(CcaKind::Bbr, duration).simulate_traffic(
        &TrafficGenome {
            timestamps: vec![],
            duration,
            max_packets: 10,
        },
        false,
    );
    assert!(
        run.stats.flow().delivered_packets < clean.stats.flow().delivered_packets * 85 / 100,
        "adversarial trace should cost BBR well over 15% of its packets ({} vs {})",
        run.stats.flow().delivered_packets,
        clean.stats.flow().delivered_packets
    );
}

#[test]
fn probe_rtt_on_rto_mitigation_avoids_the_spurious_cascade() {
    let duration = SimDuration::from_secs(5);
    let genome = bbr_stall_trace(duration);
    let default_run = evaluator(CcaKind::Bbr, duration).simulate_traffic(&genome, true);
    let fixed_run = evaluator(CcaKind::BbrProbeRttOnRto, duration).simulate_traffic(&genome, true);

    let default_spurious =
        spurious_retransmissions(&default_run.stats, SimDuration::from_millis(100));
    let fixed_spurious = spurious_retransmissions(&fixed_run.stats, SimDuration::from_millis(100));
    assert!(
        fixed_spurious * 4 <= default_spurious.max(1),
        "the mitigation should remove most spurious retransmissions: default {default_spurious}, fixed {fixed_spurious}"
    );
    let default_broken = retransmission_triggered_rounds(&default_run.stats);
    let fixed_broken = retransmission_triggered_rounds(&fixed_run.stats);
    assert!(
        fixed_broken < default_broken,
        "the mitigation should break fewer probe rounds: default {default_broken}, fixed {fixed_broken}"
    );
}

#[test]
fn ns3_cubic_bug_causes_catastrophic_self_inflicted_losses() {
    // Craft the §4.2 scenario directly: a pulse of cross traffic long enough
    // that a lost packet's fast retransmission is also lost, forcing an RTO;
    // after the RTO the retransmission fills a large hole and the cumulative
    // ACK jumps by hundreds of packets.
    let duration = SimDuration::from_secs(5);
    let mut ts = Vec::new();
    let mut t = 1_000_000u64;
    while t < 1_400_000 {
        ts.push(SimTime::from_micros(t));
        t += 500;
    }
    let max = ts.len() * 2;
    let genome = TrafficGenome {
        timestamps: ts,
        duration,
        max_packets: max,
    };

    let buggy = evaluator(CcaKind::CubicNs3Buggy, duration).simulate_traffic(&genome, true);
    let fixed = evaluator(CcaKind::Cubic, duration).simulate_traffic(&genome, true);

    assert!(
        buggy.stats.flow().rto_count >= 1,
        "scenario must force an RTO for the buggy CUBIC"
    );
    assert!(
        buggy.stats.flow().queue_drops >= fixed.stats.flow().queue_drops + 200,
        "the uncapped slow-start burst should cause clearly more self-inflicted drops \
         (buggy {} vs fixed {})",
        buggy.stats.flow().queue_drops,
        fixed.stats.flow().queue_drops
    );
}

#[test]
fn reno_low_rate_attack_pattern_causes_repeated_rto_backoff() {
    // The classic low-rate attack: a sustained ~2×-link-rate pulse roughly
    // every second (aligned with the 1 s min-RTO) that keeps the queue full
    // long enough to lose both the original packets and their fast
    // retransmissions, forcing Reno into RTO over and over.
    let duration = SimDuration::from_secs(6);
    let mut ts = Vec::new();
    for (start_ms, end_ms) in [
        (1_000u64, 1_300u64),
        (2_100, 2_400),
        (3_200, 3_500),
        (4_300, 4_600),
    ] {
        let mut t = start_ms * 1_000;
        while t < end_ms * 1_000 {
            ts.push(SimTime::from_micros(t));
            t += 500;
        }
    }
    let max = ts.len() * 2;
    let genome = TrafficGenome {
        timestamps: ts,
        duration,
        max_packets: max,
    };
    let run = evaluator(CcaKind::Reno, duration).simulate_traffic(&genome, true);

    assert!(
        run.stats.flow().rto_count >= 2,
        "the periodic pulses should force repeated RTOs, got {}",
        run.stats.flow().rto_count
    );
    // Goodput collapses well below the link rate.
    let mss = 1448;
    let goodput =
        run.stats.flow().delivered_packets as f64 * mss as f64 * 8.0 / duration.as_secs_f64();
    assert!(
        goodput < 8e6,
        "the low-rate pattern should keep Reno well below link rate, got {:.2} Mbps",
        goodput / 1e6
    );
    // Reno reacted with repeated timeouts and retransmissions.
    let rto_events = run
        .stats
        .transport
        .iter()
        .filter(|r| matches!(r.event, TransportEvent::RtoFired { .. }))
        .count();
    assert!(rto_events >= 2);
    assert!(run.stats.flow().retransmissions > 0);
}
