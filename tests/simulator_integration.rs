//! Cross-crate integration tests: real CCAs from `ccfuzz-cca` running over
//! the `ccfuzz-netsim` dumbbell, measured with `ccfuzz-analysis`.

use cc_fuzz::analysis::timeseries::{mean_of_lowest_fraction, windowed_throughput_bps};
use cc_fuzz::cca::CcaKind;
use cc_fuzz::fuzz::campaign::paper_sim_base;
use cc_fuzz::fuzz::scoring::jains_index;
use cc_fuzz::netsim::link::LinkModel;
use cc_fuzz::netsim::packet::FlowId;
use cc_fuzz::netsim::sim::{run_multi_flow_simulation, run_simulation, FlowSpec};
use cc_fuzz::netsim::time::{SimDuration, SimTime};
use cc_fuzz::netsim::trace::{LinkTrace, TrafficTrace};

fn base(duration_s: u64) -> cc_fuzz::netsim::config::SimConfig {
    let mut cfg = paper_sim_base(SimDuration::from_secs(duration_s));
    cfg.record_events = true;
    cfg
}

#[test]
fn every_cca_fills_most_of_a_clean_12mbps_link() {
    for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
        let cfg = base(5);
        let mss = cfg.mss;
        let result = run_simulation(cfg, kind.build(10));
        let goodput = result.average_goodput_bps(mss);
        assert!(
            goodput > 7e6,
            "{} only reached {:.2} Mbps on a clean 12 Mbps link",
            kind.name(),
            goodput / 1e6
        );
        assert!(
            goodput < 12.5e6,
            "{} exceeded the link rate: {goodput}",
            kind.name()
        );
    }
}

#[test]
fn loss_based_ccas_recover_from_cross_traffic_bursts() {
    // A single large burst: the flow must lose packets, recover and keep going.
    let mut cfg = base(5);
    let burst = TrafficTrace::periodic_bursts(
        SimDuration::from_secs(10), // only one burst in a 5s run
        300,
        SimDuration::from_micros(100),
        cfg.duration,
    );
    cfg.cross_traffic = TrafficTrace::new(
        burst
            .injections()
            .iter()
            .map(|t| *t + SimDuration::from_secs(1))
            .collect(),
        cfg.duration,
    );
    for kind in [CcaKind::Reno, CcaKind::Cubic] {
        let mss = cfg.mss;
        let result = run_simulation(cfg.clone(), kind.build(10));
        assert!(
            result.stats.flow().retransmissions > 0,
            "{} should retransmit",
            kind.name()
        );
        assert!(
            result.average_goodput_bps(mss) > 4e6,
            "{} collapsed after one burst: {:.2} Mbps",
            kind.name(),
            result.average_goodput_bps(mss) / 1e6
        );
    }
}

#[test]
fn trace_driven_starvation_starves_every_cca() {
    // A link that only serves packets during the first second.
    let mut cfg = base(5);
    let opportunities: Vec<SimTime> = (0..1_000)
        .map(|i| SimTime::from_micros(i * 1_000))
        .collect();
    cfg.link = LinkModel::TraceDriven {
        trace: LinkTrace::new(opportunities, cfg.duration),
    };
    for kind in [CcaKind::Reno, CcaKind::Bbr] {
        let result = run_simulation(cfg.clone(), kind.build(10));
        assert!(
            result.stats.flow().delivered_packets <= 1_000,
            "{} cannot deliver more than the trace allows",
            kind.name()
        );
        // The lowest-20%-window throughput must be zero: the flow is starved
        // for the last four seconds.
        let windows = windowed_throughput_bps(
            result.stats.delivery_times(),
            cfg.mss,
            SimDuration::from_millis(500),
            cfg.duration,
        );
        let rates: Vec<f64> = windows.iter().map(|(_, r)| *r).collect();
        assert_eq!(mean_of_lowest_fraction(&rates, 0.2), 0.0);
    }
}

#[test]
fn bbr_builds_less_queue_than_loss_based_ccas() {
    // BBR's model-based pacing keeps the standing queue small compared to
    // CUBIC, which fills the buffer until it drops.
    let queue_p95 = |kind: CcaKind| {
        let cfg = base(5);
        let result = run_simulation(cfg, kind.build(10));
        let mut delays: Vec<f64> = result
            .stats
            .queuing_delays(FlowId::Cca(0))
            .iter()
            .map(|(_, d)| d.as_secs_f64())
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cc_fuzz::analysis::timeseries::percentile(&delays, 95.0)
    };
    let bbr = queue_p95(CcaKind::Bbr);
    let cubic = queue_p95(CcaKind::Cubic);
    assert!(
        bbr < cubic,
        "BBR p95 queuing delay ({bbr:.4}s) should be below CUBIC's ({cubic:.4}s)"
    );
}

#[test]
fn delayed_ack_and_sack_settings_change_behaviour() {
    // Sanity check that the transport options are actually wired through.
    let mut no_sack = base(3);
    no_sack.sack_enabled = false;
    let with_sack = base(3);
    let mss = with_sack.mss;
    // Add enough cross traffic to cause losses (kept inside the 3 s scenario).
    let injections: Vec<SimTime> = (0..1_200)
        .map(|i| SimTime::from_micros(1_000_000 + i * 1_500))
        .collect();
    let mut no_sack_cfg = no_sack.clone();
    no_sack_cfg.cross_traffic = TrafficTrace::new(injections.clone(), no_sack.duration);
    let mut sack_cfg = with_sack.clone();
    sack_cfg.cross_traffic = TrafficTrace::new(injections, with_sack.duration);

    let without = run_simulation(no_sack_cfg, CcaKind::Reno.build(10));
    let with = run_simulation(sack_cfg, CcaKind::Reno.build(10));
    assert!(without.stats.flow().retransmissions > 0);
    assert!(with.stats.flow().retransmissions > 0);
    // SACK-based recovery should not be worse than dup-ACK-only recovery.
    assert!(
        with.average_goodput_bps(mss) >= without.average_goodput_bps(mss) * 0.8,
        "SACK run {:.2} Mbps vs non-SACK {:.2} Mbps",
        with.average_goodput_bps(mss) / 1e6,
        without.average_goodput_bps(mss) / 1e6
    );
}

#[test]
fn two_identical_reno_flows_converge_to_a_fair_share() {
    // The satellite acceptance check: on the paper's 12 Mbps / 20 ms
    // scenario, two identical Reno flows sharing the drop-tail bottleneck
    // must converge to Jain's index >= 0.95.
    let cfg = base(20);
    let mss = cfg.mss;
    let result = run_multi_flow_simulation(
        cfg,
        vec![
            FlowSpec::new(CcaKind::Reno.build(10)),
            FlowSpec::new(CcaKind::Reno.build(10)),
        ],
    );
    let goodputs = result.per_flow_goodput_bps(mss);
    assert_eq!(goodputs.len(), 2);
    let jain = jains_index(&goodputs);
    assert!(
        jain >= 0.95,
        "two identical Reno flows must share fairly: jain = {jain:.4}, goodputs = {goodputs:?}"
    );
    // Together they still use most of the link.
    let total: f64 = goodputs.iter().sum();
    assert!(
        total > 8e6 && total < 12.5e6,
        "aggregate {:.2} Mbps out of 12 Mbps",
        total / 1e6
    );
}

#[test]
fn mixed_cca_flows_share_a_bottleneck_with_per_flow_stats() {
    // BBR vs. Reno: each flow has its own boxed CC instance; per-flow stats
    // must reflect two live senders competing for one queue.
    let cfg = base(5);
    let mss = cfg.mss;
    let result = run_multi_flow_simulation(
        cfg,
        vec![
            FlowSpec::new(CcaKind::Bbr.build(10)),
            FlowSpec::new(CcaKind::Reno.build(10)),
        ],
    );
    assert_eq!(result.stats.flows.len(), 2);
    for (i, f) in result.stats.flows.iter().enumerate() {
        assert!(
            f.summary.delivered_packets > 100,
            "flow {i} delivered {}",
            f.summary.delivered_packets
        );
    }
    let goodputs = result.per_flow_goodput_bps(mss);
    let total: f64 = goodputs.iter().sum();
    assert!(total < 12.5e6, "flows cannot exceed the link: {total}");
    // The queue counters aggregate both flows.
    let c = result.stats.queue_counters;
    let sent: u64 = result
        .stats
        .flows
        .iter()
        .map(|f| f.summary.transmissions)
        .sum();
    assert_eq!(sent, c.enqueued_cca + c.dropped_cca);
}

#[test]
fn simulations_are_bit_reproducible() {
    let run = |kind: CcaKind| {
        let mut cfg = base(4);
        let injections: Vec<SimTime> = (0..1_500)
            .map(|i| SimTime::from_micros(500_000 + i * 2_100))
            .collect();
        cfg.cross_traffic = TrafficTrace::new(injections, cfg.duration);
        let result = run_simulation(cfg, kind.build(10));
        (
            result.stats.flow().delivered_packets,
            result.stats.flow().transmissions,
            result.stats.flow().retransmissions,
            result.stats.flow().rto_count,
            result.stats.events_processed,
        )
    };
    for kind in [CcaKind::Reno, CcaKind::Cubic, CcaKind::Bbr, CcaKind::Vegas] {
        assert_eq!(run(kind), run(kind), "{} is not deterministic", kind.name());
    }
}
