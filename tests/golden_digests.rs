//! Golden behaviour digests for the simulator hot path.
//!
//! The calendar/pool/dispatch overhaul promises **byte-identical**
//! behaviour: the bucketed event calendar pops in the exact `(time, seq)`
//! order the binary heap did, the packet pool and inline SACK lists change
//! only allocation, and enum dispatch runs the very same algorithm code.
//! These constants were recorded by `digest_probe` on the pre-optimization
//! engine (BinaryHeap calendar, `Box<dyn CongestionControl>` everywhere);
//! any drift here means the "optimization" changed simulation semantics and
//! silently invalidated every committed corpus fixture and paper figure.
//!
//! If the digest contract is ever changed *deliberately* (e.g. new fields
//! mixed into `RunStats::digest`), regenerate with:
//! `cargo run --release -p ccfuzz-bench --bin digest_probe`.

use cc_fuzz::cca::{CcaDispatch, CcaKind};
use cc_fuzz::fuzz::campaign::paper_sim_base;
use cc_fuzz::netsim::queue::Qdisc;
use cc_fuzz::netsim::sim::{run_multi_flow_simulation, run_simulation, FlowSpec};
use cc_fuzz::netsim::time::{SimDuration, SimTime};
use cc_fuzz::netsim::trace::TrafficTrace;

/// Pre-overhaul digests of the paper scenario (5 s, clean 12 Mbps link) per
/// CCA, recorded at the last commit before the hot-path rewrite.
const GOLDEN_SINGLE_FLOW: [(CcaKind, u64); 4] = [
    (CcaKind::Reno, 0xa0b7528c22e43bf9),
    (CcaKind::Cubic, 0xfa4efb4bb1d247a7),
    (CcaKind::Bbr, 0x4a61538fb03729b0),
    (CcaKind::Vegas, 0xa576cfca44842db8),
];

/// Pre-overhaul digest of the mixed-CCA fairness scenario below.
const GOLDEN_FAIRNESS: u64 = 0x39b924d4669c7e73;

/// Digests of the paper scenario behind a default RED gateway with ECN on,
/// per CCA, recorded when the qdisc layer landed. Drift here means the
/// RED marking path (or a CCA's ECN response) changed behaviour.
const GOLDEN_RED_ECN: [(CcaKind, u64); 7] = [
    (CcaKind::Reno, 0x430be881e43794ef),
    (CcaKind::Cubic, 0x3573443e092800a6),
    (CcaKind::CubicNs3Buggy, 0x3573443e092800a6),
    (CcaKind::Bbr, 0x26710c020b7b19dd),
    (CcaKind::BbrProbeRttOnRto, 0x01f69a2e67a07e40),
    (CcaKind::Vegas, 0xb85670175273f72e),
    (CcaKind::Dctcp, 0x174ee49375e2cf0d),
];

/// Digests behind a default CoDel gateway with ECN on, per CCA.
const GOLDEN_CODEL_ECN: [(CcaKind, u64); 7] = [
    (CcaKind::Reno, 0xe2b7e5f61e12bd3f),
    (CcaKind::Cubic, 0x0d8fdbee39375cce),
    (CcaKind::CubicNs3Buggy, 0x0d8fdbee39375cce),
    (CcaKind::Bbr, 0xfef64d4f6910e639),
    (CcaKind::BbrProbeRttOnRto, 0xfef64d4f6910e639),
    (CcaKind::Vegas, 0x7a7ab36b84a02c2b),
    (CcaKind::Dctcp, 0x06da2e4e3ea19ff1),
];

fn fairness_scenario_specs() -> Vec<FlowSpec<CcaDispatch>> {
    vec![
        FlowSpec {
            cc: CcaKind::Bbr.build_dispatch(10),
            start: SimTime::ZERO,
            stop: None,
        },
        FlowSpec {
            cc: CcaKind::Reno.build_dispatch(10),
            start: SimTime::from_millis(500),
            stop: Some(SimTime::from_secs_f64(4.0)),
        },
        FlowSpec {
            cc: CcaKind::Cubic.build_dispatch(10),
            start: SimTime::from_secs_f64(1.0),
            stop: None,
        },
    ]
}

#[test]
fn paper_scenario_digests_match_pre_optimization_engine() {
    for (kind, golden) in GOLDEN_SINGLE_FLOW {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        let result = run_simulation(cfg, kind.build_dispatch(10));
        assert_eq!(
            result.stats.digest(),
            golden,
            "digest drift for {} — the hot-path overhaul changed behaviour",
            kind.name()
        );
    }
}

#[test]
fn boxed_dispatch_matches_the_same_golden_digests() {
    // The trait-object path must agree with both the enum path and the
    // pre-overhaul recording.
    for (kind, golden) in GOLDEN_SINGLE_FLOW {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        let result = run_simulation(cfg, kind.build(10));
        assert_eq!(
            result.stats.digest(),
            golden,
            "boxed digest drift for {}",
            kind.name()
        );
    }
}

#[test]
fn fairness_scenario_digest_matches_pre_optimization_engine() {
    let duration = SimDuration::from_secs(5);
    let mut cfg = paper_sim_base(duration);
    cfg.record_events = false;
    let injections: Vec<SimTime> = (0..800).map(|i| SimTime::from_micros(i * 6_000)).collect();
    cfg.cross_traffic = TrafficTrace::new(injections, duration);
    let result = run_multi_flow_simulation(cfg, fairness_scenario_specs());
    assert_eq!(
        result.stats.digest(),
        GOLDEN_FAIRNESS,
        "fairness digest drift — multi-flow hot path changed behaviour"
    );
}

#[test]
fn red_ecn_digests_match_recorded_constants() {
    for (kind, golden) in GOLDEN_RED_ECN {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        cfg.qdisc = Qdisc::red_default(100);
        cfg.ecn_enabled = true;
        let result = run_simulation(cfg, kind.build_dispatch(10));
        assert_eq!(
            result.stats.digest(),
            golden,
            "RED+ECN digest drift for {}",
            kind.name()
        );
    }
}

#[test]
fn codel_ecn_digests_match_recorded_constants() {
    for (kind, golden) in GOLDEN_CODEL_ECN {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        cfg.qdisc = Qdisc::codel_default();
        cfg.ecn_enabled = true;
        let result = run_simulation(cfg, kind.build_dispatch(10));
        assert_eq!(
            result.stats.digest(),
            golden,
            "CoDel+ECN digest drift for {}",
            kind.name()
        );
    }
}

#[test]
fn aqm_digests_differ_from_drop_tail() {
    // The AQM gateways must actually change behaviour (otherwise the golden
    // constants above would silently pin a no-op), while the drop-tail
    // digests stay exactly at their pre-qdisc values (asserted by
    // `paper_scenario_digests_match_pre_optimization_engine`).
    for (kind, golden) in GOLDEN_SINGLE_FLOW {
        let red = GOLDEN_RED_ECN.iter().find(|(k, _)| *k == kind).unwrap().1;
        let codel = GOLDEN_CODEL_ECN.iter().find(|(k, _)| *k == kind).unwrap().1;
        assert_ne!(golden, red, "{}: RED behaves like drop-tail", kind.name());
        assert_ne!(
            golden,
            codel,
            "{}: CoDel behaves like drop-tail",
            kind.name()
        );
    }
}

#[test]
fn golden_digests_stable_across_repeated_runs() {
    // Belt and braces: the digest is a pure function of the scenario.
    let run = || {
        let mut cfg = paper_sim_base(SimDuration::from_secs(5));
        cfg.record_events = false;
        run_simulation(cfg, CcaKind::Reno.build_dispatch(10))
            .stats
            .digest()
    };
    assert_eq!(run(), run());
    assert_eq!(run(), GOLDEN_SINGLE_FLOW[0].1);
}
