//! Property test: the bucketed calendar queue pops in byte-identical order
//! to a reference `BinaryHeap` under adversarial (time, seq) schedules.
//!
//! The PR 3 hot-path rewrite replaced the simulator's `BinaryHeap` calendar
//! with a bucket ring + overflow heap whose contract is "pops are globally
//! ordered by (timestamp, schedule sequence), exactly like the heap was".
//! This file is the direct ordering oracle for that contract: every case
//! drives both implementations through the same interleaved schedule/pop
//! workload — including same-instant ties, sub-bucket clustering,
//! bucket-ring wraparound and far-future offsets that spill into (and later
//! migrate out of) the overflow heap — and requires the pop streams to be
//! identical element by element.
//!
//! Run with `CCFUZZ_PROPTEST_CASES=1000` (the CI property job does) for the
//! raised-case-count sweep; the vendored proptest derives every case's seed
//! from the test name, so runs are fully reproducible.

use cc_fuzz::netsim::event::{Event, EventQueue};
use cc_fuzz::netsim::time::SimDuration;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Case count: default suitable for `cargo test`, raised via
/// `CCFUZZ_PROPTEST_CASES` in the CI property job (and locally for deep
/// sweeps).
fn cases(default: u32) -> ProptestConfig {
    let n = std::env::var("CCFUZZ_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    ProptestConfig::with_cases(n)
}

/// Maps a raw u64 to an offset (ns from "now") that exercises a specific
/// calendar regime: exact ties, sub-microsecond clusters, within-bucket,
/// within-horizon (forcing ring wraparound as the cursor advances), and
/// far beyond the ~4.3 s horizon (overflow-heap spill + migration).
fn offset_ns(raw: u64) -> u64 {
    match raw % 5 {
        0 => 0,
        1 => raw % 1_000,
        2 => raw % 5_000_000,
        3 => raw % 1_000_000_000,
        _ => 5_000_000_000 + raw % 30_000_000_000,
    }
}

proptest! {
    #![proptest_config(cases(1000))]

    #[test]
    fn calendar_pop_order_matches_binary_heap_reference(
        raws in collection::vec(any::<u64>(), 1..250),
        pop_every in 1usize..4,
        burst in 1usize..4,
    ) {
        let mut calendar = EventQueue::new();
        // The reference oracle: a plain min-heap on (time, seq) — the exact
        // structure (and order contract) the pre-PR3 simulator used.
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;

        let mut raws = raws.into_iter();
        'outer: loop {
            // Schedule a small burst relative to the calendar's current now
            // (scheduling in the past is forbidden by contract).
            for _ in 0..burst {
                let Some(raw) = raws.next() else { break 'outer };
                let at = calendar.now() + SimDuration::from_nanos(offset_ns(raw));
                reference.push(Reverse((at.as_nanos(), seq)));
                calendar.schedule(at, Event::RtoTimer { flow: 0, generation: seq });
                seq += 1;
            }
            // Interleave pops so the cursor bucket is drained mid-fill and
            // late arrivals land in a partially consumed bucket.
            if (seq as usize).is_multiple_of(pop_every) {
                match (calendar.pop(), reference.pop()) {
                    (Some((at, Event::RtoTimer { generation, .. })), Some(Reverse(expect))) => {
                        prop_assert_eq!((at.as_nanos(), generation), expect);
                    }
                    (None, None) => {}
                    (got, expect) => {
                        prop_assert!(false, "stream mismatch: {got:?} vs {expect:?}");
                    }
                }
            }
        }

        // Drain both completely: every remaining event must come out in the
        // exact (time, seq) order of the reference heap.
        prop_assert_eq!(calendar.len(), reference.len());
        while let Some(Reverse(expect)) = reference.pop() {
            let (at, event) = calendar.pop().expect("calendar shorter than reference");
            let Event::RtoTimer { generation, .. } = event else {
                prop_assert!(false, "unexpected event {event:?}");
                unreachable!();
            };
            prop_assert_eq!((at.as_nanos(), generation), expect);
        }
        prop_assert!(calendar.pop().is_none());
        prop_assert!(calendar.is_empty());
    }

    #[test]
    fn calendar_reset_behaves_like_a_fresh_queue(
        raws in collection::vec(any::<u64>(), 1..60),
        drain in 0usize..30,
    ) {
        // Scratch reuse depends on reset() restoring fresh-queue semantics
        // (sequence numbers restart, cursor back at t=0). Drive a used and
        // a fresh queue through the same post-reset schedule and require
        // identical pop streams.
        let mut used = EventQueue::new();
        for (i, raw) in raws.iter().enumerate() {
            used.schedule(
                used.now() + SimDuration::from_nanos(offset_ns(*raw)),
                Event::RtoTimer { flow: 0, generation: i as u64 },
            );
        }
        for _ in 0..drain.min(raws.len()) {
            used.pop();
        }
        used.reset();

        let mut fresh = EventQueue::new();
        for (i, raw) in raws.iter().enumerate() {
            let at_used = used.now() + SimDuration::from_nanos(offset_ns(*raw));
            let at_fresh = fresh.now() + SimDuration::from_nanos(offset_ns(*raw));
            used.schedule(at_used, Event::RtoTimer { flow: 0, generation: i as u64 });
            fresh.schedule(at_fresh, Event::RtoTimer { flow: 0, generation: i as u64 });
        }
        loop {
            match (used.pop(), fresh.pop()) {
                (None, None) => break,
                (Some((ta, Event::RtoTimer { generation: ga, .. })),
                 Some((tb, Event::RtoTimer { generation: gb, .. }))) => {
                    prop_assert_eq!((ta, ga), (tb, gb));
                }
                (a, b) => prop_assert!(false, "reset queue diverged: {a:?} vs {b:?}"),
            }
        }
    }
}
