//! Corpus round-trip and fixture-regression tests.
//!
//! * Round trip: hunt -> persist -> load -> replay must reproduce scores and
//!   behaviour digests exactly (simulations are deterministic).
//! * Fixtures: the starter corpus committed under `crates/corpus/fixtures/`
//!   must replay cleanly — any simulator/CCA behaviour change that alters
//!   what these traces do shows up here as drift or a digest mismatch.

use cc_fuzz::cca::CcaKind;
use cc_fuzz::corpus::finding::Finding;
use cc_fuzz::corpus::hunt::{hunt, HuntConfig};
use cc_fuzz::corpus::replay::{replay_corpus, replay_findings};
use cc_fuzz::corpus::report::corpus_report;
use cc_fuzz::corpus::store::{Corpus, CorpusConfig, InsertOutcome};
use cc_fuzz::fuzz::campaign::FuzzMode;
use cc_fuzz::netsim::time::SimDuration;
use std::path::PathBuf;

fn temp_corpus(tag: &str) -> (Corpus, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ccfuzz-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (
        Corpus::open_with(&dir, CorpusConfig::default()).unwrap(),
        dir,
    )
}

fn tiny_hunt(cca: CcaKind, seed: u64) -> HuntConfig {
    let mut config = HuntConfig::quick(cca, FuzzMode::Traffic, 2, seed);
    config.ga.islands = 2;
    config.ga.population_per_island = 3;
    config.duration = SimDuration::from_secs(2);
    config
}

#[test]
fn corpus_roundtrip_save_load_replay_identical() {
    let (corpus, dir) = temp_corpus("roundtrip");
    let (finding, decision) = hunt(&corpus, &tiny_hunt(CcaKind::Reno, 5)).unwrap();
    assert_eq!(decision, InsertOutcome::Added);

    // Load back: byte-level JSON round trip must reproduce the finding.
    let loaded = corpus.get(&finding.id).unwrap();
    assert_eq!(loaded, finding);

    // Replay: fresh simulations reproduce score and digest exactly.
    let report = replay_corpus(&corpus, None).unwrap();
    assert_eq!(report.entries.len(), 1);
    assert!(report.is_clean(), "replay drifted:\n{}", report.to_text());
    assert_eq!(report.entries[0].replayed_score, finding.outcome.score);
    assert_eq!(report.entries[0].digest, finding.behavior_digest);

    // The textual report is byte-identical across runs (the acceptance bar
    // for `ccfuzz replay`).
    let again = replay_corpus(&corpus, None).unwrap();
    assert_eq!(report.to_text(), again.to_text());

    // The summary report renders and mentions the finding.
    let summary = corpus_report(&corpus).unwrap();
    assert!(summary.contains(&finding.id));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corpus_accumulates_multiple_ccas() {
    let (corpus, dir) = temp_corpus("multi");
    let (reno, _) = hunt(&corpus, &tiny_hunt(CcaKind::Reno, 7)).unwrap();
    let (cubic, _) = hunt(&corpus, &tiny_hunt(CcaKind::Cubic, 7)).unwrap();
    assert_ne!(reno.id, cubic.id);
    let all = corpus.load_all().unwrap();
    assert_eq!(all.len(), 2);
    let report = replay_corpus(&corpus, None).unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
    let _ = std::fs::remove_dir_all(dir);
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/corpus/fixtures/findings")
}

fn load_fixtures() -> Vec<Finding> {
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture corpus missing at {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 2,
        "expected at least 2 fixture findings in {}",
        dir.display()
    );
    paths
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap();
            let finding: Finding = serde_json::from_str(&text).unwrap();
            finding
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            finding
        })
        .collect()
}

#[test]
fn fixture_files_reserialize_byte_identically() {
    // The multi-flow engine added an optional `fairness` field to findings;
    // fixtures from before that must parse and re-serialize to the exact
    // committed bytes (the field is omitted when absent), and the block's
    // presence must track the hunt mode.
    let dir = fixtures_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let finding: Finding = serde_json::from_str(&text).unwrap();
        assert_eq!(
            finding.fairness.is_some(),
            !matches!(finding.mode, FuzzMode::Traffic | FuzzMode::Link),
            "{}: exactly the multi-flow fixtures carry a fairness block \
             (traffic/link hunts are single-flow)",
            finding.id
        );
        let reserialized = serde_json::to_string_pretty(&finding).unwrap() + "\n";
        assert_eq!(
            reserialized,
            text,
            "{} does not round-trip byte-identically",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 2);
}

#[test]
fn fairness_findings_roundtrip_through_the_corpus() {
    let (corpus, dir) = temp_corpus("fairness");
    let mut config = HuntConfig::quick(CcaKind::Bbr, FuzzMode::Fairness, 2, 23);
    config.ga.islands = 2;
    config.ga.population_per_island = 3;
    config.duration = SimDuration::from_secs(2);
    let (finding, decision) = hunt(&corpus, &config).unwrap();
    assert_eq!(decision, InsertOutcome::Added);
    assert!(finding.id.contains("-fairness-"));

    // The finding carries per-flow goodput + Jain's index and a digest.
    let fairness = finding.fairness.as_ref().expect("fairness summary");
    assert!(fairness.per_flow_goodput_bps.len() >= 2);
    assert!((0.0..=1.0).contains(&fairness.jain_index));
    assert_ne!(finding.behavior_digest, 0);

    // Disk round trip preserves everything, and replay is clean and
    // deterministic (score and digest reproduce exactly).
    let loaded = corpus.get(&finding.id).unwrap();
    assert_eq!(loaded, finding);
    let report = replay_corpus(&corpus, None).unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
    assert_eq!(report.entries[0].digest, finding.behavior_digest);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn aqm_findings_roundtrip_hunt_minimize_replay() {
    use cc_fuzz::corpus::minimize::{minimize_finding, MinimizeConfig};
    use cc_fuzz::corpus::GenomePayload;

    let (corpus, dir) = temp_corpus("aqm");
    let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Aqm, 2, 31);
    config.ga.islands = 2;
    config.ga.population_per_island = 4;
    config.duration = SimDuration::from_secs(2);
    let (finding, decision) = hunt(&corpus, &config).unwrap();
    assert_eq!(decision, InsertOutcome::Added);
    assert!(finding.id.contains("-aqm-"));
    let GenomePayload::Scenario(scenario) = &finding.genome else {
        panic!("aqm findings carry scenario genomes");
    };
    let gene = scenario.qdisc.expect("aqm genomes carry a qdisc gene");
    gene.discipline.validate().unwrap();

    // Disk round trip preserves the qdisc gene bit for bit.
    let loaded = corpus.get(&finding.id).unwrap();
    assert_eq!(loaded, finding);

    // Minimize: never grows the trace, retains the score threshold, and the
    // result still replays cleanly after the corpus update.
    let cfg = MinimizeConfig {
        retain_fraction: 0.8,
        max_evaluations: 150,
        ..Default::default()
    };
    let (minimized, report) = minimize_finding(&finding, &cfg);
    assert!(report.minimized_packets <= report.original_packets);
    assert!(report.minimized_score >= report.threshold, "{report:?}");
    minimized.validate().unwrap();
    corpus.update(&finding.id, &minimized).unwrap();

    let report = replay_corpus(&corpus, None).unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
    // The corpus report renders the qdisc table for the aqm bucket.
    let summary = corpus_report(&corpus).unwrap();
    assert!(summary.contains("reno / aqm"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn aqm_minimizer_shrinks_qdisc_toward_drop_tail_when_harmless() {
    use cc_fuzz::corpus::minimize::{minimize_finding, MinimizeConfig};
    use cc_fuzz::corpus::GenomePayload;
    use cc_fuzz::fuzz::scenario::{QdiscChoice, QdiscGene, ScenarioGenome};
    use cc_fuzz::netsim::queue::Qdisc;
    use cc_fuzz::netsim::rng::SimRng;

    // Build an AQM finding whose qdisc is irrelevant to its (cross-traffic
    // driven) score: a barely-acting RED. The minimizer's qdisc pass must
    // replace it with plain drop-tail.
    let (corpus, dir) = temp_corpus("aqm-shrink");
    let mut config = HuntConfig::quick(CcaKind::Reno, FuzzMode::Aqm, 1, 13);
    config.ga.islands = 1;
    config.ga.population_per_island = 2;
    config.duration = SimDuration::from_secs(2);
    let (mut finding, _) = hunt(&corpus, &config).unwrap();
    let GenomePayload::Scenario(scenario) = &mut finding.genome else {
        panic!("aqm findings carry scenario genomes");
    };
    // Near-inert RED: thresholds at the buffer's edge, tiny probability.
    scenario.qdisc = Some(QdiscGene {
        discipline: Qdisc::Red {
            min_thresh: 98,
            max_thresh: 99,
            mark_probability: 0.01,
        },
        ecn: false,
        choice: QdiscChoice::Red,
    });
    // Drop the cross traffic so only the qdisc pass has work to do.
    let mut rng = SimRng::new(1);
    let plain = ScenarioGenome::generate_aqm(
        CcaKind::Reno,
        SimDuration::from_secs(2),
        0,
        QdiscChoice::Red,
        &mut rng,
    );
    scenario.traffic = plain.traffic.clone();
    let (outcome, digest, fairness) = finding.replay_full(None);
    finding.outcome = outcome;
    finding.behavior_digest = digest;
    finding.fairness = fairness;

    let cfg = MinimizeConfig {
        retain_fraction: 0.8,
        max_evaluations: 50,
        ..Default::default()
    };
    let (minimized, report) = minimize_finding(&finding, &cfg);
    let GenomePayload::Scenario(min_scenario) = &minimized.genome else {
        panic!("scenario payload");
    };
    assert!(
        min_scenario.qdisc.is_none(),
        "an inert qdisc must shrink to drop-tail: {report:?}"
    );
    assert!(report
        .passes
        .iter()
        .any(|p| p.contains("qdisc->droptail: accepted")));
    assert!(report.minimized_score >= report.threshold);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fixture_corpus_replays_without_drift() {
    let findings = load_fixtures();
    let report = replay_findings(&findings, None);
    assert!(
        report.is_clean(),
        "committed fixtures no longer reproduce their stored scores/digests — \
         the simulator or a CCA changed behaviour:\n{}",
        report.to_text()
    );
    // Determinism of the report itself, byte for byte.
    let again = replay_findings(&findings, None);
    assert_eq!(report.to_text(), again.to_text());
}

/// The sim tracer must be an observer, not a participant: replaying every
/// committed fixture with tracing enabled must reproduce the stored golden
/// digest, and the strict replay report must stay byte-identical to one
/// produced without tracing in the picture.
#[test]
fn traced_replay_is_passive_on_every_fixture() {
    let findings = load_fixtures();
    let untraced = replay_findings(&findings, None).to_text();
    for finding in &findings {
        let (outcome, digest, trace) = finding.replay_traced();
        assert_eq!(
            digest, finding.behavior_digest,
            "{}: tracing perturbed the behaviour digest",
            finding.id
        );
        let (plain_outcome, plain_digest) = finding.replay_run(None);
        assert_eq!(
            digest, plain_digest,
            "{}: traced vs untraced digest",
            finding.id
        );
        assert_eq!(
            outcome.score.to_bits(),
            plain_outcome.score.to_bits(),
            "{}: traced vs untraced score",
            finding.id
        );
        assert!(
            trace.total_observed() > 0,
            "{}: a replayed fixture must produce trace events",
            finding.id
        );
    }
    // Interleaving traced replays changed nothing for the strict report.
    let after = replay_findings(&findings, None).to_text();
    assert_eq!(untraced, after);
}

#[test]
fn fixture_corpus_is_minimized_and_adversarial() {
    for finding in load_fixtures() {
        assert!(
            finding.provenance.minimized,
            "{}: starter fixtures are committed post-minimization",
            finding.id
        );
        assert!(
            finding.outcome.score >= 0.8 * finding.provenance.original_score,
            "{}: minimization must retain >= 80% of the original score",
            finding.id
        );
        assert!(
            finding.genome.packet_count() as u64 <= finding.provenance.original_packets,
            "{}: minimization must not grow the trace",
            finding.id
        );
        assert!(
            finding.outcome.performance_score > 0.3,
            "{}: a starter finding should meaningfully hurt its CCA (perf {})",
            finding.id,
            finding.outcome.performance_score
        );
    }
}
