//! # cc-fuzz
//!
//! Umbrella crate for the CC-Fuzz reproduction ("CC-Fuzz: Genetic
//! algorithm-based fuzzing for stress testing congestion control algorithms",
//! HotNets 2022). It re-exports the workspace crates under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`netsim`] — the discrete-event network simulator substrate.
//! * [`cca`] — congestion control algorithms (Reno, CUBIC, BBR, Vegas).
//! * [`fuzz`] — the genetic-algorithm fuzzer.
//! * [`analysis`] — measurement post-processing and figure data.
//! * [`obs`] — observability: metrics registry, phase profiler and the
//!   campaign telemetry stream.
//! * [`corpus`] — persistent findings corpus, trace minimization and
//!   deterministic regression replay (the `ccfuzz` CLI).
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! experiment inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ccfuzz_analysis as analysis;
pub use ccfuzz_cca as cca;
pub use ccfuzz_core as fuzz;
pub use ccfuzz_corpus as corpus;
pub use ccfuzz_netsim as netsim;
pub use ccfuzz_obs as obs;

/// The crate version (matches the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn reexports_are_wired() {
        // Compile-time smoke test that the re-exported paths exist.
        let _ = super::cca::CcaKind::Bbr.name();
        let _ = super::netsim::config::SimConfig::paper_default();
        let _ = super::fuzz::GaParams::quick();
        let _ = super::corpus::MinimizeConfig::default();
    }
}
