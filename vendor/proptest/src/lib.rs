//! Workspace-local stand-in for `proptest` (offline build).
//!
//! Supports the subset the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ...) { ... } }`
//! * range strategies (`0usize..100`, `-1e6f64..1e6`), `any::<T>()`,
//!   `proptest::collection::vec(strategy, len_range)`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Inputs are drawn from a deterministic PRNG seeded from the test name and
//! case index, so every run sees the same cases. There is no shrinking: a
//! failing case panics with its case index, which is enough to reproduce it.

#![forbid(unsafe_code)]

/// Deterministic PRNG for test-case generation (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one (test, case) pair.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from a test name and case index, deterministically.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.gen_range_u64(0, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = rng.next_f64() as $t;
                self.start + (self.end - self.start) * x
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with a random length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Builds a vector strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                rng.gen_range_u64(self.len.start as u64, self.len.end as u64) as usize
            } else {
                self.len.start
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Run-time configuration.

    /// How many cases each property test runs.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expands each `fn name(params) { body }` into a `#[test]` loop.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

/// Internal: binds `pat in strategy` parameters from the case RNG.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 10u64..20, y in 0usize..5, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_length(mut xs in collection::vec(0u64..100, 0..10)) {
            prop_assert!(xs.len() < 10);
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn any_produces_values(b in any::<bool>(), s in any::<u64>()) {
            let _ = (b, s);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
