//! JSON serialization for the workspace-local serde shim.
//!
//! * [`to_string`] / [`to_string_pretty`] render a [`serde::Serialize`] value
//!   deterministically: object keys keep declaration order, floats use Rust's
//!   shortest round-trip formatting, and non-finite floats become `null`
//!   (matching real `serde_json`'s lossy float handling).
//! * [`from_str`] is a strict recursive-descent JSON parser feeding
//!   [`serde::Deserialize`].

#![forbid(unsafe_code)]

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error produced by serialization or parsing.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if *x == 0.0 && x.is_sign_negative() {
                // `(-0.0).to_string()` is "-0", which would parse back as the
                // integer 0 and lose the sign bit.
                out.push_str("-0.0");
            } else if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            write_delimited(items.iter(), out, indent, depth, ('[', ']'), write_value)
        }
        Value::Map(entries) => write_delimited(
            entries.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, v), out, indent, depth| {
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth);
            },
        ),
    }
}

fn write_delimited<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, Option<usize>, usize),
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(brackets.1);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")));
        }
        // Integer syntax. Integers wider than 64 bits (Rust's float Display
        // never uses scientific notation, so e.g. 6.02e23 serializes as a
        // long digit string) fall back to f64, as real serde_json would when
        // asked for a float.
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(n) = stripped.parse::<u64>() {
                if n <= i64::MAX as u64 + 1 {
                    return Ok(Value::I64((n as i128).wrapping_neg() as i64));
                }
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        let xs = [0.1f64, 1.0 / 3.0, 6.02e23, -0.0, 5.0];
        for x in xs {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u64, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);

        let t: Vec<(String, f64)> = vec![("a".into(), 1.5)];
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<Vec<(String, f64)>>(&s).unwrap(), t);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![1u64, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
