//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace-local
//! serde shim.
//!
//! The offline build environment has no `syn`/`quote`, so the input item is
//! parsed directly from the `proc_macro::TokenStream`. Supported shapes —
//! which cover every derived type in this workspace:
//!
//! * structs with named fields
//! * tuple structs (a single-field newtype serializes as its inner value)
//! * unit structs
//! * enums with unit, tuple and struct variants (externally tagged)
//!
//! Generics and `#[serde(...)]` attributes are intentionally not supported;
//! hitting either produces a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim version).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (shim version).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde_derive shim: {msg}\");")
                .parse()
                .unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        panic!(
            "serde_derive shim generated invalid code for {}: {e}\n{code}",
            item.name
        )
    })
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the serde shim"
        ));
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body for `{name}`, found {other:?}")),
        }
    };

    Ok(Item { name, shape })
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)`
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: Ty, b: Ty, ...` returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past a type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_tokens_since_comma {
                    count += 1;
                }
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "explicit discriminant on variant `{name}` is not supported"
            ));
        }
        variants.push(Variant { name, shape });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => {
            format!("::serde::value::Value::Str(::std::string::String::from(\"{name}\"))")
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => format!(
            "{ty}::{vname} => ::serde::value::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "{ty}::{vname}({binds}) => ::serde::value::Value::Map(vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                binds = binds.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{ty}::{vname} {{ {binds} }} => ::serde::value::Value::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::value::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::value::map_get(__m, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __m = __v.as_map(\"{name}\")?;\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq(\"{name}\")?;\n\
                 if __s.len() != {n} {{ return Err(::serde::value::DeError(format!(\"{name}: expected array of {n}, got {{}}\", __s.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = __v; Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::DeError> {{\n\
                {body}\n\
            }}\n\
         }}"
    )
}

fn gen_deserialize_enum(ty: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as strings; data variants as one-entry maps.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("\"{0}\" => return Ok({ty}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.shape {
            VariantShape::Unit => None,
            VariantShape::Tuple(1) => Some(format!(
                "\"{0}\" => return Ok({ty}::{0}(::serde::Deserialize::from_value(__payload)?)),",
                v.name
            )),
            VariantShape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{0}\" => {{\n\
                        let __s = __payload.as_seq(\"{ty}::{0}\")?;\n\
                        if __s.len() != {n} {{ return Err(::serde::value::DeError(format!(\"{ty}::{0}: expected array of {n}, got {{}}\", __s.len()))); }}\n\
                        return Ok({ty}::{0}({inits}));\n\
                    }}",
                    v.name,
                    inits = inits.join(", ")
                ))
            }
            VariantShape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::value::map_get(__fm, \"{f}\")?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{0}\" => {{\n\
                        let __fm = __payload.as_map(\"{ty}::{0}\")?;\n\
                        return Ok({ty}::{0} {{ {inits} }});\n\
                    }}",
                    v.name,
                    inits = inits.join(", ")
                ))
            }
        })
        .collect();

    format!(
        "match __v {{\n\
            ::serde::value::Value::Str(__s) => {{\n\
                match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                Err(::serde::value::DeError(format!(\"unknown {ty} variant `{{__s}}`\")))\n\
            }}\n\
            ::serde::value::Value::Map(__m) if __m.len() == 1 => {{\n\
                let (__tag, __payload) = &__m[0];\n\
                match __tag.as_str() {{ {data_arms} _ => {{}} }}\n\
                Err(::serde::value::DeError(format!(\"unknown {ty} variant `{{__tag}}`\")))\n\
            }}\n\
            __other => Err(::serde::value::DeError::unexpected(\"{ty} variant\", __other)),\n\
        }}",
        unit_arms = unit_arms.join(" "),
        data_arms = data_arms.join("\n")
    )
}
