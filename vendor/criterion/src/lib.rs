//! Workspace-local stand-in for `criterion` (offline build).
//!
//! Implements just enough of criterion's API for the benches under
//! `crates/bench/benches/` to compile and produce useful wall-clock numbers:
//! no statistics, no HTML reports. Each benchmark runs a short fixed number
//! of iterations and prints mean wall-clock time per iteration.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), every benchmark body runs exactly once so the test suite
//! stays fast while still exercising the bench code paths.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export matching `criterion::black_box` call sites.
pub use std::hint::black_box;

fn in_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn iterations() -> u32 {
    if in_test_mode() {
        1
    } else {
        std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
    }
}

/// Identifies a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's display form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs the routine `self.iters` times, reporting mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / self.iters.max(1);
        println!("    {:>12?} per iter ({} iters)", per_iter, self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        println!("  bench {}/{id}", self.name);
        f(&mut Bencher {
            iters: iterations(),
        });
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench {}/{id}", self.name);
        f(
            &mut Bencher {
                iters: iterations(),
            },
            input,
        );
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("  bench {id}");
        f(&mut Bencher {
            iters: iterations(),
        });
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                println!("group {} :: {}", stringify!($group), stringify!($target));
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
