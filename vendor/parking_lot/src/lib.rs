//! Workspace-local stand-in for `parking_lot` (offline build).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, recovering the inner value if a
//! previous holder panicked.

#![forbid(unsafe_code)]

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
