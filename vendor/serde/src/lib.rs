//! A workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde the workspace relies on: `Serialize` / `Deserialize`
//! traits derivable for plain structs and enums, backed by a simple
//! self-describing value tree ([`value::Value`]) that the sibling
//! `serde_json` shim renders to and parses from JSON.
//!
//! The data model is intentionally small:
//!
//! * structs (named fields) -> JSON objects, fields in declaration order
//! * newtype structs (single-field tuple structs) -> the inner value
//! * tuple structs / tuples -> JSON arrays
//! * unit enum variants -> the variant name as a JSON string
//! * tuple / struct enum variants -> a one-entry object `{"Variant": ...}`
//!
//! That matches serde's externally-tagged defaults closely enough that all
//! JSON produced here is stable, human-readable and self-consistent.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing value tree and deserialization error type.

    /// A parsed / to-be-serialized value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Non-negative integer.
        U64(u64),
        /// Negative integer.
        I64(i64),
        /// Floating-point number.
        F64(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object; insertion order is preserved so output is deterministic.
        Map(Vec<(String, Value)>),
    }

    /// Deserialization error.
    #[derive(Clone, Debug, PartialEq)]
    pub struct DeError(pub String);

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl DeError {
        /// Builds an error describing an unexpected value shape.
        pub fn unexpected(expected: &str, got: &Value) -> DeError {
            DeError(format!("expected {expected}, got {}", kind_name(got)))
        }
    }

    fn kind_name(v: &Value) -> &'static str {
        match v {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    impl Value {
        /// Interprets the value as an object, or errors mentioning `ctx`.
        pub fn as_map(&self, ctx: &str) -> Result<&[(String, Value)], DeError> {
            match self {
                Value::Map(m) => Ok(m),
                other => Err(DeError(format!(
                    "{ctx}: {}",
                    DeError::unexpected("object", other).0
                ))),
            }
        }

        /// Interprets the value as an array, or errors mentioning `ctx`.
        pub fn as_seq(&self, ctx: &str) -> Result<&[Value], DeError> {
            match self {
                Value::Seq(s) => Ok(s),
                other => Err(DeError(format!(
                    "{ctx}: {}",
                    DeError::unexpected("array", other).0
                ))),
            }
        }
    }

    /// Looks up a field in an object, erroring if it is absent.
    pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
        map.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError(format!("missing field `{key}`")))
    }
}

use value::{DeError, Value};

/// A type that can be converted into the serde value tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the serde value tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::unexpected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::unexpected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite floats as null
                    other => Err(DeError::unexpected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq("Vec")?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items: Vec<T>| DeError(format!("expected array of {N}, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq("tuple")?;
                if s.len() != $len {
                    return Err(DeError(format!("expected {}-tuple, got array of {}", $len, s.len())));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::value::*;
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Option<u32> = Some(3);
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), Some(3));
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&n.to_value()).unwrap(), None);
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn tuples_roundtrip() {
        let t = ("a".to_string(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn map_get_reports_missing_fields() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").unwrap_err().0.contains("missing field"));
    }
}
