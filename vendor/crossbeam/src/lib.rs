//! Workspace-local stand-in for the `crossbeam` crate (offline build).
//!
//! Only the API this workspace uses is provided: [`scope`] with
//! crossbeam-style spawn closures (`|scope| { scope.spawn(|_| ...) }`),
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).

#![forbid(unsafe_code)]

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to spawned threads.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope again so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// Differences from crossbeam: panics in spawned threads are propagated by
/// `std::thread::scope` when the scope exits rather than being collected into
/// the returned `Result`, so the result is always `Ok` — which keeps the
/// common `crossbeam::scope(...).expect(...)` pattern working unchanged.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_can_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                let total = &total;
                scope.spawn(move |_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u64>();
                });
            }
        })
        .unwrap();
        assert_eq!(*total.lock().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
